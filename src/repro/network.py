"""The integrated spatial-social network ``G_rs`` (Definition 4).

:class:`SpatialSocialNetwork` bundles a road network with its POIs and a
social network whose users are anchored to road edges, and validates the
coupling invariants at construction time:

* every user's home and every POI's position references a real edge with
  a valid offset;
* POI identifiers are unique;
* user interest vectors and the keyword universe share one dimension
  ``d`` (``num_keywords``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .config import NETWORK_DISTANCE_CACHE_SIZE
from .exceptions import GraphConstructionError, UnknownEntityError
from .roadnet.engines import DistanceEngine, make_engine
from .roadnet.graph import RoadNetwork
from .roadnet.poi import POI
from .roadnet.shortest_path import DistanceOracle
from .socialnet.graph import SocialNetwork, User


class SpatialSocialNetwork:
    """An integrated spatial-social network (``G_rs = G_r ∪ G_s``)."""

    def __init__(
        self,
        road: RoadNetwork,
        social: SocialNetwork,
        pois: Sequence[POI],
        num_keywords: int,
        distance_cache_size: int = NETWORK_DISTANCE_CACHE_SIZE,
        distance_engine: str = "plain",
        validate: bool = True,
    ) -> None:
        self.road = road
        self.social = social
        self.num_keywords = int(num_keywords)
        self._pois: Dict[int, POI] = {}
        if validate:
            for poi in pois:
                if poi.poi_id in self._pois:
                    raise GraphConstructionError(
                        f"duplicate POI id {poi.poi_id}"
                    )
                road.validate_position(poi.position)
                for keyword in poi.keywords:
                    if not 0 <= keyword < self.num_keywords:
                        raise GraphConstructionError(
                            f"POI {poi.poi_id} keyword {keyword} outside "
                            f"[0, {self.num_keywords})"
                        )
                self._pois[poi.poi_id] = poi
            for user in social.users():
                road.validate_position(user.home)
                if user.dimensions != self.num_keywords:
                    raise GraphConstructionError(
                        f"user {user.user_id} has {user.dimensions}-dim "
                        f"interests but the network declares "
                        f"d={self.num_keywords}"
                    )
        else:
            # Attaching a frozen snapshot: the coupling invariants were
            # validated when the file was written, and re-walking every
            # POI/user would defeat the O(1) open.
            for poi in pois:
                self._pois[poi.poi_id] = poi
        self._poi_version = 0
        self._endpoint_pois: Optional[Tuple[int, Dict[int, List[int]]]] = None
        #: shared oracle for dist_RN lookups; keys are ("user", id) and
        #: ("poi", id) so users and POIs never collide.
        self.distances = DistanceOracle(
            road,
            cache_size=distance_cache_size,
            engine=make_engine(distance_engine, road),
        )

    def use_distance_engine(self, name: str) -> DistanceEngine:
        """Switch the shared oracle to the named ``dist_RN`` engine.

        A no-op when the engine of that name is already active (so a
        rebuilt processor does not throw away CH preprocessing);
        otherwise the cached maps are dropped together with the old
        engine — distances are engine-invariant, but mixing kernels
        inside one cache would blur the per-engine measurements.
        """
        if self.distances.engine.name == name:
            return self.distances.engine
        engine = make_engine(name, self.road)
        self.distances.engine = engine
        self.distances.clear()
        return engine

    # -- mutation (bumps version counters so indexes can detect staleness) ----

    @property
    def version(self) -> int:
        """Combined version of the underlying graphs and the POI set.

        Index structures capture this at build time and refuse to serve
        queries once it moves (see
        :meth:`repro.core.algorithm.GPSSNQueryProcessor.answer`).
        """
        return self.road.version + self.social.version + self._poi_version

    def add_poi(self, poi: POI) -> None:
        """Add a POI (validated like construction-time POIs)."""
        if poi.poi_id in self._pois:
            raise GraphConstructionError(f"duplicate POI id {poi.poi_id}")
        self.road.validate_position(poi.position)
        for keyword in poi.keywords:
            if not 0 <= keyword < self.num_keywords:
                raise GraphConstructionError(
                    f"POI {poi.poi_id} keyword {keyword} outside "
                    f"[0, {self.num_keywords})"
                )
        self._pois[poi.poi_id] = poi
        self._poi_version += 1
        self.distances.clear()

    def remove_poi(self, poi_id: int) -> POI:
        """Remove and return a POI."""
        try:
            poi = self._pois.pop(poi_id)
        except KeyError:
            raise UnknownEntityError(f"unknown POI {poi_id}") from None
        self._poi_version += 1
        # Drop cached Dijkstra maps: a future POI reusing this id must
        # not inherit the removed POI's distances.
        self.distances.clear()
        return poi

    def move_user(self, user_id: int, home: "NetworkPosition") -> User:
        """Relocate a user's home; returns the previous record.

        Interests and friendships are preserved. The shared distance
        oracle is cleared because the user's cached ``("user", id)``
        Dijkstra map is rooted at the old home.
        """
        current = self.social.user(user_id)
        self.road.validate_position(home)
        moved = User(user_id=user_id, interests=current.interests, home=home)
        previous = self.social.replace_user(moved)
        self.distances.clear()
        return previous

    def add_friendship(self, a: int, b: int) -> None:
        """Add a friendship edge (hop distances shift; road caches stay)."""
        self.social.add_friendship(a, b)

    def remove_friendship(self, a: int, b: int) -> None:
        """Remove a friendship edge."""
        self.social.remove_friendship(a, b)

    def apply(self, mutation) -> None:
        """Apply one typed mutation (see :mod:`repro.dynamic.ops`).

        Dispatches on ``mutation.op`` so the dynamic layer's dataclasses
        stay import-free here; raises for unknown operations. Index
        maintenance is *not* performed — that is the job of
        :class:`repro.dynamic.maintenance.DynamicIndexMaintainer`, which
        wraps this call with incremental index updates.
        """
        from .roadnet.graph import NetworkPosition

        op = getattr(mutation, "op", None)
        if op == "move_user":
            self.move_user(
                mutation.user,
                NetworkPosition(mutation.u, mutation.v, mutation.offset),
            )
        elif op == "add_friend":
            self.add_friendship(mutation.a, mutation.b)
        elif op == "remove_friend":
            self.remove_friendship(mutation.a, mutation.b)
        elif op == "add_poi":
            from .roadnet.poi import POI

            position = NetworkPosition(mutation.u, mutation.v, mutation.offset)
            self.road.validate_position(position)
            self.add_poi(
                POI(
                    poi_id=mutation.poi,
                    location=self.road.position_coords(position),
                    position=position,
                    keywords=frozenset(mutation.keywords),
                )
            )
        elif op == "remove_poi":
            self.remove_poi(mutation.poi)
        else:
            raise GraphConstructionError(f"unknown mutation op {op!r}")

    def add_user(self, user: "User", friends: Iterable[int] = ()) -> None:
        """Add a user (validated) and wire the given friendships."""
        self.road.validate_position(user.home)
        if user.dimensions != self.num_keywords:
            raise GraphConstructionError(
                f"user {user.user_id} has {user.dimensions}-dim interests "
                f"but the network declares d={self.num_keywords}"
            )
        self.social.add_user(user)
        for friend in friends:
            self.social.add_friendship(user.user_id, friend)
        self.distances.clear()

    # -- POI access ----------------------------------------------------------

    @property
    def num_pois(self) -> int:
        return len(self._pois)

    def poi(self, poi_id: int) -> POI:
        try:
            return self._pois[poi_id]
        except KeyError:
            raise UnknownEntityError(f"unknown POI {poi_id}") from None

    def pois(self) -> List[POI]:
        return list(self._pois.values())

    def poi_ids(self) -> List[int]:
        return list(self._pois)

    # -- distances (dist_RN between users and POIs) ---------------------------

    def user_poi_distance(self, user_id: int, poi_id: int) -> float:
        """``dist_RN(u_j, o_i)`` — the Dijkstra tree is rooted at the POI.

        POI-rooted trees are reused across the many users compared against
        the same candidate POI during query processing, which keeps the
        oracle cache effective.
        """
        user = self.social.user(user_id)
        poi = self.poi(poi_id)
        return self.distances.distance(("poi", poi_id), poi.position, user.home)

    def poi_poi_distance(self, a: int, b: int) -> float:
        """``dist_RN(o_a, o_b)`` between two POIs."""
        poi_a = self.poi(a)
        poi_b = self.poi(b)
        return self.distances.distance(("poi", a), poi_a.position, poi_b.position)

    def pois_within(self, poi_id: int, radius: float) -> List[int]:
        """Ids of POIs with ``dist_RN`` at most ``radius`` from ``poi_id``.

        Materializes the circular region ``⊙(o_i, radius)`` of Section 3.1
        (including ``poi_id`` itself).
        """
        center = self.poi(poi_id)
        dist_map = self.distances.distances_from(("poi", poi_id), center.position)
        result = []
        from .roadnet.shortest_path import position_distance_from_map

        for other in self._pois.values():
            d = position_distance_from_map(
                self.road, dist_map, other.position, center.position
            )
            if d <= radius:
                result.append(other.poi_id)
        return result

    def _pois_by_endpoint(self) -> Dict[int, List[int]]:
        """Edge-endpoint vertex -> ids of POIs anchored on that vertex.

        Version-guarded lazy cache; lets bounded region sweeps gather
        candidates from the searched neighbourhood instead of scanning
        every POI.
        """
        cached = self._endpoint_pois
        if cached is not None and cached[0] == self.version:
            return cached[1]
        by_vertex: Dict[int, List[int]] = {}
        for poi in self._pois.values():
            for vertex in (poi.position.u, poi.position.v):
                by_vertex.setdefault(vertex, []).append(poi.poi_id)
        self._endpoint_pois = (self.version, by_vertex)
        return by_vertex

    def poi_distances_within(self, poi_id: int, radius: float) -> Dict[int, float]:
        """``{o.id: dist_RN(o_i, o)}`` over POIs within ``radius`` of ``poi_id``.

        One *bounded*, uncached search per call: offline index builds
        sweep every POI once, where caching |P| full vertex maps would
        both evict the query-relevant oracle entries and pay O(|V|) per
        POI. The truncation is lossless — the edge endpoint realizing a
        qualifying POI's distance lies on its shortest path, so that
        vertex distance never exceeds ``radius``. Distances are exactly
        the values :meth:`poi_poi_distance` would report.
        """
        from .roadnet.shortest_path import (
            position_distance_from_map,
            position_seeds,
        )

        center = self.poi(poi_id)
        dist_map = self.distances.engine.sssp(
            position_seeds(self.road, center.position),
            max_distance=radius + 1e-9,
        )
        self.distances.searches_run += 1
        by_endpoint = self._pois_by_endpoint()
        candidates: set = set()
        for vertex in dist_map:
            candidates.update(by_endpoint.get(vertex, ()))
        # Same-edge POIs reach the center by the direct along-edge walk,
        # which needs no vertex map entry — always consider them.
        for vertex in (center.position.u, center.position.v):
            candidates.update(by_endpoint.get(vertex, ()))
        out: Dict[int, float] = {}
        for pid in sorted(candidates):
            other = self._pois[pid]
            d = position_distance_from_map(
                self.road, dist_map, other.position, center.position
            )
            if d <= radius:
                out[pid] = d
        return out

    def __repr__(self) -> str:
        return (
            f"SpatialSocialNetwork(road={self.road!r}, social={self.social!r}, "
            f"pois={self.num_pois}, d={self.num_keywords})"
        )
