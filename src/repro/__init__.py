"""GP-SSN: Group Planning Queries over Spatial-Social Networks.

A complete reproduction of "Efficient Processing of Group Planning
Queries Over Spatial-Social Networks" (Al-Baghdadi, Sharma, Lian; ICDE
2023): the spatial-social network data model, the pruning lemmas, the
road/social indexes with pivot-based distance bounds, the GP-SSN query
answering algorithm (Algorithm 2), the exhaustive baseline, the data
generators, and the full experiment harness.

Quickstart::

    from repro import uni_dataset, GPSSNQuery, GPSSNQueryProcessor

    network = uni_dataset()
    processor = GPSSNQueryProcessor(network)
    answer = processor.answer(GPSSNQuery(query_user=0, tau=3))
    print(answer.users, answer.pois, answer.max_distance)
"""

from .config import DEFAULT_CONFIG, ExperimentConfig
from .core.algorithm import GPSSNQueryProcessor, PruningToggles
from .core.baseline import BaselineProcessor
from .core.metrics import InterestMetric, MetricScorer
from .core.query import GPSSNAnswer, GPSSNQuery
from .io.bundle import load_network, save_network
from .datagen.realworld import brightkite_california, gowalla_colorado
from .datagen.synthetic import (
    generate_spatial_social_network,
    uni_dataset,
    zipf_dataset,
)
from .exceptions import (
    GPSSNError,
    GraphConstructionError,
    IndexStateError,
    InfeasibleQueryError,
    InvalidParameterError,
    UnknownEntityError,
)
from .network import SpatialSocialNetwork
from .roadnet import POI, NetworkPosition, RoadNetwork
from .socialnet import SocialNetwork, User

__version__ = "1.0.0"

__all__ = [
    "GPSSNQuery",
    "GPSSNAnswer",
    "GPSSNQueryProcessor",
    "PruningToggles",
    "BaselineProcessor",
    "InterestMetric",
    "MetricScorer",
    "save_network",
    "load_network",
    "SpatialSocialNetwork",
    "RoadNetwork",
    "SocialNetwork",
    "NetworkPosition",
    "POI",
    "User",
    "ExperimentConfig",
    "DEFAULT_CONFIG",
    "uni_dataset",
    "zipf_dataset",
    "generate_spatial_social_network",
    "brightkite_california",
    "gowalla_colorado",
    "GPSSNError",
    "GraphConstructionError",
    "InvalidParameterError",
    "UnknownEntityError",
    "InfeasibleQueryError",
    "IndexStateError",
    "__version__",
]
