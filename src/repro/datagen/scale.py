"""Fast large-scale synthetic networks for snapshot/scale benchmarks.

The Section-6.1 generators in :mod:`~repro.datagen.synthetic` are
faithful to the paper but quadratic in places that do not matter at
laptop scale (Delaunay thinning, nearest-vertex home snapping). The
snapshot scale benchmark sweeps |V(G_r)| to 10^5, where those costs
dominate the very build times the benchmark is trying to measure — so
this module provides a vectorized generator with the same *structural*
shape (sparse near-planar road, homophilous communities, POIs and homes
on edges) built in O(V + P + U) numpy work:

* **Road** — a jittered grid: every row is chained left-to-right, the
  first column chains the rows (connectivity by construction), and a
  random fraction of the remaining vertical links is kept to land the
  paper's 2.1-2.4 average degree without any planarity test.
* **POIs / homes** — sprinkled directly onto uniformly drawn edges
  (edge arrays are already materialized, so no snapping pass).
* **Social** — users are partitioned into interest communities; each
  community is wired as a ring plus random chords, giving connected,
  homophilous components far above the query sampler's minimum size.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..config import DATA_SPACE_SIZE
from ..exceptions import InvalidParameterError
from ..geometry import Point
from ..network import SpatialSocialNetwork
from ..roadnet.graph import NetworkPosition, RoadNetwork
from ..roadnet.poi import POI
from ..socialnet.graph import SocialNetwork, User

__all__ = ["generate_grid_network", "grid_road_network"]

#: Fraction of non-chain vertical grid links kept; lands average degree
#: near the 2.1-2.4 range Table 2 reports for real road networks.
VERTICAL_KEEP = 0.25


def grid_road_network(
    num_vertices: int,
    rng: np.random.Generator,
    space_size: float = DATA_SPACE_SIZE,
) -> RoadNetwork:
    """A connected, sparse, jittered-grid road network in O(V)."""
    if num_vertices < 2:
        raise InvalidParameterError("road network needs at least 2 vertices")
    side = max(2, int(math.ceil(math.sqrt(num_vertices))))
    ids = np.arange(num_vertices)
    row, col = ids // side, ids % side
    step = space_size / side
    jitter = rng.uniform(-0.3, 0.3, size=(2, num_vertices)) * step
    xs = (col + 0.5) * step + jitter[0]
    ys = (row + 0.5) * step + jitter[1]

    # Horizontal chain within each row, plus the first-column chain
    # between rows: connected by construction.
    right = ids[(col < side - 1) & (ids + 1 < num_vertices)]
    down_all = ids[ids + side < num_vertices]
    chain = down_all[down_all % side == 0]
    optional = down_all[down_all % side != 0]
    kept = optional[rng.random(optional.size) < VERTICAL_KEEP]

    road = RoadNetwork()
    add_vertex = road.add_vertex
    for vid in range(num_vertices):
        add_vertex(vid, float(xs[vid]), float(ys[vid]))
    add_edge = road.add_edge
    for u_arr, dv in ((right, 1), (chain, side), (kept, side)):
        for u in u_arr.tolist():
            add_edge(u, u + dv)
    return road


def _edge_arrays(road: RoadNetwork):
    """Materialize the undirected edge list as parallel numpy arrays."""
    us, vs, lengths = [], [], []
    for u, v, length in road.edges():
        us.append(u)
        vs.append(v)
        lengths.append(length)
    return np.asarray(us), np.asarray(vs), np.asarray(lengths, dtype=float)


def _interest_matrix(
    num_users: int,
    num_keywords: int,
    topics: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Row-normalized interests with one dominant topic per user.

    The primary-topic weight is high enough that two same-community
    users clear the default pairwise-similarity threshold (gamma = 0.5
    under the dot metric needs ~0.75^2 concentration) — queries on this
    dataset find answers instead of degenerating into unpruned scans.
    """
    noise = rng.random((num_users, num_keywords)) * 0.15
    primary = rng.uniform(0.78, 0.95, size=num_users)
    noise[np.arange(num_users), topics] += primary
    return noise / noise.sum(axis=1, keepdims=True)


def generate_grid_network(
    num_road_vertices: int,
    num_pois: int,
    num_users: int,
    num_keywords: int = 5,
    seed: int = 7,
    space_size: float = DATA_SPACE_SIZE,
) -> SpatialSocialNetwork:
    """A full ``G_rs`` with the bench-scale grid recipe (vectorized)."""
    if num_users < 1:
        raise InvalidParameterError("social network needs at least 1 user")
    rng = np.random.default_rng(seed)
    road = grid_road_network(num_road_vertices, rng, space_size)
    us, vs, lengths = _edge_arrays(road)
    coords = {vid: road.coords(vid) for vid in road.vertices()}

    # POIs sprinkled straight onto uniformly drawn edges.
    poi_edges = rng.integers(us.size, size=num_pois)
    poi_t = rng.random(num_pois)
    poi_kw = rng.integers(num_keywords, size=num_pois)
    pois: List[POI] = []
    for pid in range(num_pois):
        eid = int(poi_edges[pid])
        u, v, length = int(us[eid]), int(vs[eid]), float(lengths[eid])
        t = float(poi_t[pid])
        pu, pv = coords[u], coords[v]
        pois.append(POI(
            poi_id=pid,
            location=Point(pu.x + t * (pv.x - pu.x), pu.y + t * (pv.y - pu.y)),
            position=NetworkPosition(u, v, t * length),
            keywords=frozenset({int(poi_kw[pid])}),
        ))

    # Users: community = primary interest topic; ring + chords per
    # community keeps each component connected and homophilous.
    topics = rng.integers(num_keywords, size=num_users)
    interests = _interest_matrix(num_users, num_keywords, topics, rng)
    home_edges = rng.integers(us.size, size=num_users)
    home_t = rng.random(num_users)
    social = SocialNetwork()
    for uid in range(num_users):
        eid = int(home_edges[uid])
        social.add_user(User(
            user_id=uid,
            interests=interests[uid],
            home=NetworkPosition(
                int(us[eid]), int(vs[eid]), float(home_t[uid] * lengths[eid])
            ),
        ))
    for topic in range(num_keywords):
        members = np.flatnonzero(topics == topic)
        size = members.size
        if size < 2:
            continue
        for i in range(size):  # ring: the community stays one component
            a, b = int(members[i]), int(members[(i + 1) % size])
            if a != b and not social.are_friends(a, b):
                social.add_friendship(a, b)
        chords = rng.integers(size, size=(size, 2))
        for a_idx, b_idx in chords.tolist():  # ~1 extra chord per member
            a, b = int(members[a_idx]), int(members[b_idx])
            if a != b and not social.are_friends(a, b):
                social.add_friendship(a, b)
    return SpatialSocialNetwork(road, social, pois, num_keywords)
