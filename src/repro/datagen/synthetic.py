"""Synthetic spatial-social network generators (Section 6.1, UNI / ZIPF).

The paper generates synthetic data as follows, which we follow step by
step:

* **Road network** — random intersection points in a 2D space, connected
  to spatially close neighbours without introducing new crossings (the
  road network is a planar graph). We realize this with a Delaunay
  triangulation (planar by construction) thinned down to the target
  average degree while a random spanning tree keeps it connected.
* **POIs** — ``n`` POIs placed on randomly selected edges, ``w ∈ [0, 5]``
  POIs per selected edge with ``w`` Uniform/Zipf distributed; each POI's
  keyword set is drawn from the keyword domain ``[0, d)``.
* **Social network** — each user connected to ``deg(G_s)`` random users,
  with the degree Uniform/Zipf in ``[1, 10]``; each user carries a
  ``d``-dimensional interest vector with Uniform/Zipf entries in
  ``[0, 1]``.
* **Coupling** — users are mapped to random positions on road edges.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..config import DATA_SPACE_SIZE
from ..exceptions import InvalidParameterError
from ..network import SpatialSocialNetwork
from ..roadnet.graph import NetworkPosition, RoadNetwork
from ..roadnet.poi import POI
from ..socialnet.graph import SocialNetwork, User
from .distributions import Distribution, Sampler, make_sampler

#: Per-edge POI count domain from the paper ("w ∈ [0, 5]").
POIS_PER_EDGE_RANGE: Tuple[int, int] = (0, 5)
#: Social degree domain from the paper ("within the range [1, 10]").
SOCIAL_DEGREE_RANGE: Tuple[int, int] = (1, 10)


def _delaunay_edges(points: np.ndarray) -> List[Tuple[int, int]]:
    """Unique undirected edges of the Delaunay triangulation of ``points``.

    Falls back to a nearest-neighbour chain for degenerate inputs (fewer
    than 4 points or collinear layouts) where scipy cannot triangulate.
    """
    n = len(points)
    if n < 2:
        return []
    try:
        from scipy.spatial import Delaunay

        tri = Delaunay(points)
    except Exception:
        order = np.argsort(points[:, 0], kind="stable")
        return [(int(order[i]), int(order[i + 1])) for i in range(n - 1)]
    edges = set()
    for simplex in tri.simplices:
        for i in range(3):
            a, b = int(simplex[i]), int(simplex[(i + 1) % 3])
            edges.add((min(a, b), max(a, b)))
    return sorted(edges)


def generate_road_network(
    num_vertices: int,
    rng: np.random.Generator,
    target_degree: float = 2.4,
    space_size: float = DATA_SPACE_SIZE,
) -> RoadNetwork:
    """A connected, planar random road network.

    Vertices are uniform in ``[0, space_size]^2``; edges come from the
    Delaunay triangulation, thinned (keeping a spanning tree) until the
    average degree is about ``target_degree`` — matching the sparse,
    near-planar degree statistics of real road networks (Table 2 reports
    2.1-2.4).
    """
    if num_vertices < 2:
        raise InvalidParameterError("road network needs at least 2 vertices")
    points = rng.random((num_vertices, 2)) * space_size
    road = RoadNetwork()
    for vid in range(num_vertices):
        road.add_vertex(vid, float(points[vid, 0]), float(points[vid, 1]))

    edges = _delaunay_edges(points)
    # Build a spanning tree over the triangulation to guarantee
    # connectivity, then add the shortest leftover edges up to the target
    # edge budget.
    parent = list(range(num_vertices))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def lengths(edge: Tuple[int, int]) -> float:
        a, b = edge
        return float(np.hypot(*(points[a] - points[b])))

    tree_edges: List[Tuple[int, int]] = []
    extra_edges: List[Tuple[int, int]] = []
    for a, b in sorted(edges, key=lengths):
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
            tree_edges.append((a, b))
        else:
            extra_edges.append((a, b))

    target_edges = max(num_vertices - 1, int(target_degree * num_vertices / 2))
    budget = target_edges - len(tree_edges)
    rng.shuffle(extra_edges)
    chosen = tree_edges + extra_edges[: max(budget, 0)]
    for a, b in chosen:
        road.add_edge(a, b)
    return road


def _random_keyword_set(
    sampler: Sampler,
    rng: np.random.Generator,
    num_keywords: int,
    max_keywords_per_poi: int = 2,
) -> frozenset:
    """A non-empty keyword set for one POI.

    The number of keywords is Uniform/Zipf in ``[1, max_keywords_per_poi]``
    and the keyword identities are drawn (without replacement) with the
    distribution's category weights over the domain ``[0, d)`` — the
    paper's "each keyword has the value domain [0, 4]" for the default
    ``d = 5``.
    """
    count = min(sampler.integers(1, max_keywords_per_poi), num_keywords)
    weights = sampler.choice_weights(num_keywords)
    chosen = rng.choice(num_keywords, size=count, replace=False, p=weights)
    return frozenset(int(k) for k in chosen)


def generate_pois(
    road: RoadNetwork,
    num_pois: int,
    sampler: Sampler,
    rng: np.random.Generator,
    num_keywords: int,
) -> List[POI]:
    """``num_pois`` POIs on randomly selected road edges.

    Edges are selected at random; each selected edge receives
    ``w ∈ [0, 5]`` POIs (Uniform/Zipf) until the total reaches
    ``num_pois``.
    """
    if num_pois < 0:
        raise InvalidParameterError("num_pois must be >= 0")
    all_edges = list(road.edges())
    if not all_edges and num_pois > 0:
        raise InvalidParameterError("cannot place POIs on an edgeless road network")
    pois: List[POI] = []
    while len(pois) < num_pois:
        u, v, length = all_edges[int(rng.integers(len(all_edges)))]
        per_edge = sampler.integers(*POIS_PER_EDGE_RANGE)
        for _ in range(per_edge):
            if len(pois) >= num_pois:
                break
            offset = float(rng.random() * length)
            position = NetworkPosition(u, v, offset)
            location = road.position_coords(position)
            pois.append(
                POI(
                    poi_id=len(pois),
                    location=location,
                    position=position,
                    keywords=_random_keyword_set(sampler, rng, num_keywords),
                )
            )
    return pois


def random_position(road: RoadNetwork, rng: np.random.Generator) -> NetworkPosition:
    """A uniformly random position on a random edge of ``road``."""
    all_edges = list(road.edges())
    if not all_edges:
        raise InvalidParameterError("road network has no edges")
    u, v, length = all_edges[int(rng.integers(len(all_edges)))]
    return NetworkPosition(u, v, float(rng.random() * length))


#: Fraction of friendship stubs wired within the same interest community.
HOMOPHILY = 0.6
#: Fraction of users living in small satellite components, mirroring the
#: disconnected fringe of real check-in social networks (Brightkite's
#: largest weakly connected component covers only ~85% of its users).
SATELLITE_FRACTION = 0.18


def interest_vector(
    num_keywords: int,
    primary_topic: int,
    rng: np.random.Generator,
    sampler: Sampler,
) -> np.ndarray:
    """A normalized interest distribution concentrated on a primary topic.

    The paper models ``u_j.w`` as a "(normalized) weighted vector
    (distribution)" over topics. We generate each user with a dominant
    primary topic (weight ~ U[0.55, 0.95]), a secondary topic taking a
    share of the remainder, and Uniform/Zipf noise over the rest — a
    standard topic-mixture shape that makes the Table-3 gamma thresholds
    behave as in Figure 7(b) (graded selectivity rather than all-or-none).
    """
    primary_weight = float(rng.uniform(0.55, 0.95))
    secondary = int((primary_topic + 1 + rng.integers(max(num_keywords - 1, 1)))
                    % num_keywords)
    secondary_weight = (1.0 - primary_weight) * float(rng.uniform(0.2, 0.5))
    noise = np.asarray(sampler.unit(num_keywords), dtype=float)
    noise_total = float(noise.sum())
    if noise_total > 0:
        noise /= noise_total
    w = noise * (1.0 - primary_weight - secondary_weight)
    w[primary_topic] += primary_weight
    if num_keywords > 1:
        w[secondary] += secondary_weight
    else:
        w[primary_topic] += secondary_weight
    return w / float(w.sum())


def generate_social_network(
    num_users: int,
    road: RoadNetwork,
    sampler: Sampler,
    rng: np.random.Generator,
    num_keywords: int,
) -> SocialNetwork:
    """A random, homophilous social network whose users live on ``road``.

    Each user belongs to an interest community (their primary topic,
    drawn with Uniform/Zipf popularity weights) and receives a target
    degree Uniform/Zipf in ``[1, 10]``. A fraction :data:`HOMOPHILY` of
    friendship stubs is wired within the user's community — the
    interest-assortative structure real location-based social networks
    exhibit, without which pairwise-similar connected groups (the GP-SSN
    answer shape) would be vanishingly rare. A chain edge backstops
    degree-0 users so the graph cannot fragment into lone vertices.
    """
    if num_users < 1:
        raise InvalidParameterError("social network needs at least 1 user")
    social = SocialNetwork()
    edge_list = list(road.edges())
    if not edge_list:
        raise InvalidParameterError("road network has no edges to anchor homes")

    num_topics = num_keywords
    topic_weights = sampler.choice_weights(num_topics)
    topics = rng.choice(num_topics, size=num_users, p=topic_weights)
    community: dict = {}
    for uid in range(num_users):
        community.setdefault(int(topics[uid]), []).append(uid)

    # Each interest community gets a geographic anchor: real friend groups
    # cluster in space (same city/district), which is what gives the
    # paper's road-distance pruning its bite — a spatially uniform user
    # population would make every user-set bound span the whole map.
    centers = {
        k: road.coords(int(rng.choice(list(road.vertices()))))
        for k in range(num_topics)
    }
    spread = 0.18 * DATA_SPACE_SIZE

    def home_near(center) -> NetworkPosition:
        x = float(center.x + rng.normal(0.0, spread))
        y = float(center.y + rng.normal(0.0, spread))
        vertex = road.nearest_vertex(x, y)
        neighbors = road.neighbors(vertex)
        other = min(neighbors, key=neighbors.get)
        length = road.edge_length(vertex, other)
        return NetworkPosition(vertex, other, float(rng.random() * length))

    for uid in range(num_users):
        home = home_near(centers[int(topics[uid])])
        interests = interest_vector(num_keywords, int(topics[uid]), rng, sampler)
        social.add_user(User(user_id=uid, interests=interests, home=home))

    # Split off the satellite fringe: those users form tiny cliques among
    # themselves instead of joining the giant component (as in real
    # check-in networks), which is what the social-distance pruning of
    # Lemma 4 / Lemma 9 rules out at query time.
    num_satellites = int(num_users * SATELLITE_FRACTION)
    shuffled = list(range(num_users))
    rng.shuffle(shuffled)
    satellites = shuffled[:num_satellites]
    main_users = shuffled[num_satellites:]
    satellite_set = set(satellites)

    idx = 0
    while idx < len(satellites):
        clique_size = min(int(rng.integers(2, 5)), len(satellites) - idx)
        clique = satellites[idx: idx + clique_size]
        for i, a in enumerate(clique):
            for b in clique[i + 1:]:
                social.add_friendship(a, b)
        idx += clique_size

    for uid in main_users:
        degree = sampler.integers(*SOCIAL_DEGREE_RANGE)
        peers = [
            p for p in community[int(topics[uid])] if p not in satellite_set
        ]
        for _ in range(degree):
            if rng.random() < HOMOPHILY and len(peers) > 1:
                other = peers[int(rng.integers(len(peers)))]
            else:
                other = main_users[int(rng.integers(len(main_users)))]
            if other != uid and not social.are_friends(uid, other):
                social.add_friendship(uid, other)
    # Backstop: wire any stray degree-0 main user into the giant component.
    anchor = main_users[0] if main_users else None
    for uid in main_users:
        if not social.friends(uid) and anchor is not None and uid != anchor:
            social.add_friendship(uid, anchor)
    return social


def generate_spatial_social_network(
    num_road_vertices: int,
    num_pois: int,
    num_users: int,
    distribution: Distribution,
    num_keywords: int = 5,
    seed: int = 7,
    target_road_degree: float = 2.4,
) -> SpatialSocialNetwork:
    """A full synthetic ``G_rs`` following the paper's recipe."""
    rng = np.random.default_rng(seed)
    sampler = make_sampler(distribution, rng)
    road = generate_road_network(num_road_vertices, rng, target_road_degree)
    pois = generate_pois(road, num_pois, sampler, rng, num_keywords)
    social = generate_social_network(num_users, road, sampler, rng, num_keywords)
    return SpatialSocialNetwork(road, social, pois, num_keywords)


def uni_dataset(
    num_road_vertices: int = 600,
    num_pois: int = 200,
    num_users: int = 600,
    num_keywords: int = 5,
    seed: int = 7,
) -> SpatialSocialNetwork:
    """The UNI synthetic dataset (all draws Uniform), laptop-scale defaults."""
    return generate_spatial_social_network(
        num_road_vertices, num_pois, num_users,
        Distribution.UNIFORM, num_keywords, seed,
    )


def zipf_dataset(
    num_road_vertices: int = 600,
    num_pois: int = 200,
    num_users: int = 600,
    num_keywords: int = 5,
    seed: int = 7,
) -> SpatialSocialNetwork:
    """The ZIPF synthetic dataset (all draws Zipf), laptop-scale defaults."""
    return generate_spatial_social_network(
        num_road_vertices, num_pois, num_users,
        Distribution.ZIPF, num_keywords, seed,
    )
