"""Assemble a spatial-social network from raw dataset files.

This is the paper's real-data preparation pipeline (Section 6.1),
operating on the formats in :mod:`repro.io.formats`:

1. the road network comes from a DIMACS ``.gr``/``.co`` pair;
2. distinct check-in locations become POIs, snapped onto the nearest
   road edge; each location's keyword set is derived from its id
   (deterministic hashing stands in for the category metadata the
   public dumps lack);
3. each user's interest vector is the (salience-sharpened) distribution
   of keywords over their check-ins — exactly how the paper builds
   ``u_j.w``;
4. each user's home is the centroid of their check-ins, snapped to the
   nearest road edge — the paper's mapping;
5. friendships come from the SNAP edge list (users without check-ins
   are dropped, as the paper requires a location for every user).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import InvalidParameterError
from ..network import SpatialSocialNetwork
from ..roadnet.graph import NetworkPosition, RoadNetwork
from ..roadnet.poi import POI
from ..socialnet.graph import SocialNetwork, User
from ..socialnet.interests import interests_from_visits
from ..io.formats import CheckinRecord


def default_location_keywords(
    location_id: str, num_keywords: int, keywords_per_location: int = 2
) -> frozenset:
    """Deterministic keyword set for a location id.

    The public Brightkite/Gowalla dumps carry opaque location ids with
    no category labels; hashing the id into ``keywords_per_location``
    stable buckets gives every location a reproducible pseudo-category.
    Callers with real category metadata pass their own mapping instead.
    """
    if num_keywords < 1:
        raise InvalidParameterError("num_keywords must be >= 1")
    seed = abs(hash(("gpssn-location", location_id)))
    picks = set()
    for i in range(keywords_per_location):
        picks.add((seed // (num_keywords ** i)) % num_keywords)
    return frozenset(picks)


def _snap_to_edge(road: RoadNetwork, x: float, y: float) -> NetworkPosition:
    """Nearest-vertex edge snap: the position sits at the start of the
    shortest edge incident to the closest vertex."""
    vertex = road.nearest_vertex(x, y)
    neighbors = road.neighbors(vertex)
    if not neighbors:
        raise InvalidParameterError(
            f"vertex {vertex} has no incident edge to snap onto"
        )
    other = min(neighbors, key=neighbors.get)
    return NetworkPosition(vertex, other, 0.0)


def assemble_network(
    road: RoadNetwork,
    friendships: Sequence[Tuple[int, int]],
    checkins: Sequence[CheckinRecord],
    num_keywords: int = 5,
    location_keywords=None,
    interest_concentration: float = 3.0,
    coordinate_transform=None,
) -> SpatialSocialNetwork:
    """Build a :class:`SpatialSocialNetwork` from raw dataset pieces.

    Args:
        road: the road network (e.g. from :func:`load_dimacs_road`).
        friendships: undirected friendship pairs (e.g. from
            :func:`load_snap_social_edges`).
        checkins: check-in records (e.g. from :func:`load_checkins`).
        num_keywords: size of the keyword/topic universe ``d``.
        location_keywords: ``location_id -> iterable of keyword ids``;
            defaults to :func:`default_location_keywords`.
        interest_concentration: salience exponent applied to keyword
            visit counts (see :func:`interests_from_visits`).
        coordinate_transform: optional ``(lat, lon) -> (x, y)`` mapping
            check-in coordinates into the road network's coordinate
            frame; defaults to identity (lat -> x, lon -> y).

    Returns:
        The assembled network. Users with no check-ins are dropped
        (they have no derivable location or interests); friendships
        referencing dropped users are skipped.
    """
    if not checkins:
        raise InvalidParameterError("need at least one check-in record")
    if location_keywords is None:
        def location_keywords(loc_id):
            return default_location_keywords(loc_id, num_keywords)
    if coordinate_transform is None:
        def coordinate_transform(lat, lon):
            return (lat, lon)

    # --- POIs from distinct locations -------------------------------------
    location_coords: Dict[str, Tuple[float, float]] = {}
    for record in checkins:
        location_coords.setdefault(
            record.location_id,
            coordinate_transform(record.latitude, record.longitude),
        )
    pois: List[POI] = []
    poi_of_location: Dict[str, int] = {}
    for loc_id in sorted(location_coords):
        x, y = location_coords[loc_id]
        position = _snap_to_edge(road, x, y)
        keywords = frozenset(
            int(k) % num_keywords for k in location_keywords(loc_id)
        )
        poi_of_location[loc_id] = len(pois)
        pois.append(
            POI(
                poi_id=len(pois),
                location=road.position_coords(position),
                position=position,
                keywords=keywords or frozenset({0}),
            )
        )

    # --- users from check-in histories -------------------------------------
    visits: Dict[int, List[CheckinRecord]] = defaultdict(list)
    for record in checkins:
        visits[record.user_id].append(record)

    social = SocialNetwork()
    for uid in sorted(visits):
        records = visits[uid]
        counts = np.zeros(num_keywords)
        xs, ys = [], []
        for record in records:
            poi = pois[poi_of_location[record.location_id]]
            for keyword in poi.keywords:
                counts[keyword] += 1.0
            xs.append(poi.location.x)
            ys.append(poi.location.y)
        interests = interests_from_visits(
            counts, num_keywords, concentration=interest_concentration
        )
        home = _snap_to_edge(road, float(np.mean(xs)), float(np.mean(ys)))
        social.add_user(User(user_id=uid, interests=interests, home=home))

    for a, b in friendships:
        if social.has_user(a) and social.has_user(b) and a != b:
            if not social.are_friends(a, b):
                social.add_friendship(a, b)

    return SpatialSocialNetwork(road, social, pois, num_keywords)
