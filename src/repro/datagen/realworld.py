"""Simulated real-world datasets Bri+Cal and Gow+Col (Section 6.1, Table 2).

The paper evaluates on two real spatial-social networks:

* **Bri+Cal** — the Brightkite check-in social network (40K users,
  average degree 10.3) over the California road network (21K vertices,
  average degree 2.1);
* **Gow+Col** — the Gowalla social network (40K users, average degree
  32.1) over the Colorado road network (30K vertices, average degree 2.4).

The original downloads (SNAP, DIMACS) are not available in this offline
environment, so we build *statistically matched simulacra*:

* social graphs are grown by preferential attachment (the heavy-tailed
  degree distribution of real check-in networks) calibrated to the
  Table-2 average degree;
* road networks reuse the planar random-geometric generator calibrated
  to the Table-2 vertex count and degree;
* interest vectors follow the paper's own recipe for the real data:
  users "check in" at POIs, and entry ``f`` of ``u_j.w`` is the fraction
  of the user's check-ins whose POI carries keyword ``f``;
* each user's home is the centroid of their checked-in POIs, snapped to
  the nearest road edge — exactly the paper's mapping.

The ``scale`` parameter shrinks the vertex counts uniformly (degrees are
preserved) so the full benchmark suite runs on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import InvalidParameterError
from ..network import SpatialSocialNetwork
from ..roadnet.graph import NetworkPosition, RoadNetwork
from ..roadnet.poi import POI
from ..socialnet.graph import SocialNetwork, User
from ..socialnet.interests import interests_from_visits
from .distributions import Distribution, make_sampler
from .synthetic import generate_pois, generate_road_network


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics in the shape of the paper's Table 2."""

    name: str
    social_users: int
    social_avg_degree: float
    road_vertices: int
    road_avg_degree: float

    def as_row(self) -> Tuple[str, int, float, int, float]:
        return (
            self.name,
            self.social_users,
            round(self.social_avg_degree, 1),
            self.road_vertices,
            round(self.road_avg_degree, 1),
        )


def preferential_attachment_graph(
    num_users: int,
    avg_degree: float,
    rng: np.random.Generator,
    communities: Optional[Sequence[int]] = None,
    homophily: float = 0.5,
) -> List[Tuple[int, int]]:
    """Friendship edges grown by homophilous preferential attachment.

    Each arriving user attaches to ``m ≈ avg_degree / 2`` existing users
    chosen proportionally to current degree, yielding the power-law degree
    distribution characteristic of Brightkite/Gowalla. When
    ``communities`` assigns each user a community label, a cross-community
    candidate is rejected with probability ``homophily`` (retried), giving
    the interest-assortative mixing real check-in networks show. Returns
    undirected edges over user ids ``0..num_users-1``.
    """
    if num_users < 2:
        raise InvalidParameterError("need at least 2 users")
    m = max(1, int(round(avg_degree / 2.0)))
    m = min(m, num_users - 1)
    edges: List[Tuple[int, int]] = []
    # Repeated-endpoint list: sampling uniformly from it is sampling
    # proportionally to degree.
    endpoint_pool: List[int] = [0]
    for new in range(1, num_users):
        targets: set = set()
        attach = min(m, new)
        attempts = 0
        while len(targets) < attach and attempts < 50 * attach:
            attempts += 1
            if rng.random() < 0.1 or not endpoint_pool:
                candidate = int(rng.integers(new))
            else:
                candidate = endpoint_pool[int(rng.integers(len(endpoint_pool)))]
            if candidate == new:
                continue
            if (
                communities is not None
                and communities[candidate] != communities[new]
                and rng.random() < homophily
            ):
                continue
            targets.add(candidate)
        while len(targets) < attach:  # homophily starved: fill uniformly
            candidate = int(rng.integers(new))
            if candidate != new:
                targets.add(candidate)
        for t in targets:
            edges.append((new, t))
            endpoint_pool.append(new)
            endpoint_pool.append(t)
    return edges


def _checkin_interest_vector(
    pois: Sequence[POI],
    checkin_ids: Sequence[int],
    num_keywords: int,
) -> np.ndarray:
    """Interest vector from a user's check-in POI ids (paper's recipe).

    The concentration exponent peaks the distribution on the dominant
    topic, as topic-discovery pipelines do; without it, multi-keyword
    POIs flatten every vector and no pair clears the Table-3 gamma range.
    """
    counts = np.zeros(num_keywords)
    for pid in checkin_ids:
        for keyword in pois[pid].keywords:
            counts[keyword] += 1.0
    return interests_from_visits(counts, num_keywords, concentration=3.0)


def _home_from_checkins(
    road: RoadNetwork,
    pois: Sequence[POI],
    checkin_ids: Sequence[int],
    rng: np.random.Generator,
) -> NetworkPosition:
    """Home = centroid of checked-in POIs snapped to the nearest vertex's
    cheapest incident edge (the paper sets homes to check-in centroids)."""
    xs = [pois[pid].location.x for pid in checkin_ids]
    ys = [pois[pid].location.y for pid in checkin_ids]
    cx, cy = float(np.mean(xs)), float(np.mean(ys))
    vertex = road.nearest_vertex(cx, cy)
    neighbors = road.neighbors(vertex)
    if not neighbors:  # isolated vertex: should not happen on our generators
        raise InvalidParameterError(f"vertex {vertex} has no incident edges")
    other = min(neighbors, key=neighbors.get)
    length = neighbors[other]
    return NetworkPosition(vertex, other, float(rng.random() * 0.25 * length))


def _simulated_dataset(
    name: str,
    num_users: int,
    social_avg_degree: float,
    num_road_vertices: int,
    road_avg_degree: float,
    num_pois: int,
    num_keywords: int,
    checkins_per_user: Tuple[int, int],
    seed: int,
) -> SpatialSocialNetwork:
    rng = np.random.default_rng(seed)
    sampler = make_sampler(Distribution.UNIFORM, rng)
    road = generate_road_network(
        num_road_vertices, rng, target_degree=road_avg_degree
    )
    pois = generate_pois(road, num_pois, sampler, rng, num_keywords)

    # Users check in preferentially at POIs carrying their favorite
    # keyword (the behavioural skew from which the paper derives the
    # interest vectors of the real datasets); the favorite also acts as
    # the community label for homophilous friendship formation.
    by_keyword: Dict[int, List[int]] = {k: [] for k in range(num_keywords)}
    for poi in pois:
        for k in poi.keywords:
            by_keyword[k].append(poi.poi_id)
    favorites = [int(rng.integers(num_keywords)) for _ in range(num_users)]

    # Each favorite-keyword community also gets a geographic district:
    # check-in populations cluster in space (a user mostly visits their
    # own city), which is what localizes homes and makes road-distance
    # bounds selective, as in the real Brightkite/Gowalla data.
    district_size = max(5, len(pois) // 4)
    district_pool: Dict[int, List[int]] = {}
    for k in range(num_keywords):
        anchor = pois[int(rng.integers(len(pois)))].location
        nearest = sorted(
            pois,
            key=lambda p: (p.location.x - anchor.x) ** 2
            + (p.location.y - anchor.y) ** 2,
        )[:district_size]
        district_pool[k] = [p.poi_id for p in nearest]

    social = SocialNetwork()
    lo, hi = checkins_per_user
    for uid in range(num_users):
        count = int(rng.integers(lo, hi + 1))
        favorite = favorites[uid]
        favored_pool = by_keyword[favorite]
        local_pool = district_pool[favorite]
        local_favored = [p for p in local_pool if p in set(favored_pool)] or local_pool
        checkins = []
        for _ in range(count):
            roll = rng.random()
            if roll < 0.6 and local_favored:
                checkins.append(local_favored[int(rng.integers(len(local_favored)))])
            elif roll < 0.85 and favored_pool:
                checkins.append(favored_pool[int(rng.integers(len(favored_pool)))])
            else:
                checkins.append(int(rng.integers(len(pois))))
        interests = _checkin_interest_vector(pois, checkins, num_keywords)
        home = _home_from_checkins(road, pois, checkins, rng)
        social.add_user(User(user_id=uid, interests=interests, home=home))
    # Real check-in networks keep ~15% of their users outside the giant
    # component; model that fringe as tiny satellite cliques. The core
    # grows by homophilous preferential attachment as before.
    num_satellites = int(num_users * 0.15)
    order = list(range(num_users))
    rng.shuffle(order)
    satellites = order[:num_satellites]
    core = sorted(order[num_satellites:])
    core_index = {uid: i for i, uid in enumerate(core)}
    core_edges = preferential_attachment_graph(
        len(core), social_avg_degree, rng,
        communities=[favorites[uid] for uid in core],
    )
    for ia, ib in core_edges:
        a, b = core[ia], core[ib]
        if not social.are_friends(a, b):
            social.add_friendship(a, b)
    idx = 0
    while idx < len(satellites):
        clique_size = min(int(rng.integers(2, 5)), len(satellites) - idx)
        clique = satellites[idx: idx + clique_size]
        for i, a in enumerate(clique):
            for b in clique[i + 1:]:
                social.add_friendship(a, b)
        idx += clique_size
    return SpatialSocialNetwork(road, social, pois, num_keywords)


def brightkite_california(
    scale: float = 0.02,
    num_keywords: int = 5,
    seed: int = 11,
) -> SpatialSocialNetwork:
    """Simulacrum of the Bri+Cal dataset (Table 2).

    Full scale (``scale=1.0``): 40K users at degree 10.3 over 21K road
    vertices at degree 2.1. The default scale keeps the degrees and
    shrinks the vertex counts for laptop-scale experiments.
    """
    if scale <= 0:
        raise InvalidParameterError("scale must be > 0")
    return _simulated_dataset(
        name="Bri+Cal",
        num_users=max(40, int(40_000 * scale)),
        social_avg_degree=10.3,
        num_road_vertices=max(40, int(21_000 * scale)),
        road_avg_degree=2.1,
        num_pois=max(30, int(10_000 * scale)),
        num_keywords=num_keywords,
        checkins_per_user=(3, 12),
        seed=seed,
    )


def gowalla_colorado(
    scale: float = 0.02,
    num_keywords: int = 5,
    seed: int = 13,
) -> SpatialSocialNetwork:
    """Simulacrum of the Gow+Col dataset (Table 2).

    Full scale (``scale=1.0``): 40K users at degree 32.1 over 30K road
    vertices at degree 2.4.
    """
    if scale <= 0:
        raise InvalidParameterError("scale must be > 0")
    return _simulated_dataset(
        name="Gow+Col",
        num_users=max(40, int(40_000 * scale)),
        social_avg_degree=32.1,
        num_road_vertices=max(40, int(30_000 * scale)),
        road_avg_degree=2.4,
        num_pois=max(30, int(10_000 * scale)),
        num_keywords=num_keywords,
        checkins_per_user=(3, 20),
        seed=seed,
    )


def dataset_stats(name: str, network: SpatialSocialNetwork) -> DatasetStats:
    """Table-2-style statistics for any spatial-social network."""
    return DatasetStats(
        name=name,
        social_users=network.social.num_users,
        social_avg_degree=network.social.average_degree(),
        road_vertices=network.road.num_vertices,
        road_avg_degree=network.road.average_degree(),
    )
