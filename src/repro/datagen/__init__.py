"""Data generators for the paper's experimental datasets (Section 6.1).

* :mod:`~repro.datagen.synthetic` — UNI / ZIPF synthetic spatial-social
  networks, generated exactly as the paper describes;
* :mod:`~repro.datagen.realworld` — statistically matched simulacra of the
  real datasets Bri+Cal (Brightkite + California) and Gow+Col
  (Gowalla + Colorado), whose originals are not redistributable here;
* :mod:`~repro.datagen.distributions` — the Uniform / Zipf samplers the
  generators share;
* :mod:`~repro.datagen.scale` — a vectorized O(V) grid generator for
  benchmark sweeps up to 10^5 road vertices.
"""

from .distributions import Distribution, UniformSampler, ZipfSampler, make_sampler
from .scale import generate_grid_network, grid_road_network
from .realworld import (
    DatasetStats,
    brightkite_california,
    dataset_stats,
    gowalla_colorado,
)
from .synthetic import (
    generate_pois,
    generate_road_network,
    generate_social_network,
    generate_spatial_social_network,
    uni_dataset,
    zipf_dataset,
)

__all__ = [
    "Distribution",
    "UniformSampler",
    "ZipfSampler",
    "make_sampler",
    "generate_grid_network",
    "generate_road_network",
    "grid_road_network",
    "generate_pois",
    "generate_social_network",
    "generate_spatial_social_network",
    "uni_dataset",
    "zipf_dataset",
    "brightkite_california",
    "gowalla_colorado",
    "DatasetStats",
    "dataset_stats",
]
