"""Uniform and Zipf samplers shared by the data generators (Section 6.1).

The paper draws POI counts per edge, keyword values, social degrees, and
interest probabilities from either the Uniform or the Zipf distribution.
Both samplers expose the same three operations so generators can be
written distribution-agnostically:

* ``integers(low, high)`` — one integer in ``[low, high]`` inclusive;
* ``unit(...)`` — floats in ``[0, 1]``;
* ``choice_weights(k)`` — a probability vector over ``k`` categories.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

from ..exceptions import InvalidParameterError


class Distribution(enum.Enum):
    """The two data distributions used in the paper's experiments."""

    UNIFORM = "uniform"
    ZIPF = "zipf"


class UniformSampler:
    """Uniform sampling over integer ranges and the unit interval."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def integers(self, low: int, high: int) -> int:
        """One integer drawn uniformly from ``[low, high]`` inclusive."""
        if low > high:
            raise InvalidParameterError(f"empty range [{low}, {high}]")
        return int(self.rng.integers(low, high + 1))

    def unit(self, size: int = 1) -> np.ndarray:
        """``size`` floats drawn uniformly from ``[0, 1]``."""
        return self.rng.random(size)

    def choice_weights(self, k: int) -> np.ndarray:
        """A flat probability vector over ``k`` categories."""
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        return np.full(k, 1.0 / k)


class ZipfSampler:
    """Zipf (power-law) sampling with exponent ``s``.

    Rank ``i`` (1-based) receives probability proportional to ``i**-s``.
    Integer draws map ranks onto the requested range; unit draws use the
    normalized rank over a fixed resolution grid, producing the skewed
    values in ``[0, 1]`` the paper's ZIPF datasets call for.
    """

    def __init__(self, rng: np.random.Generator, s: float = 1.2,
                 resolution: int = 64) -> None:
        if s <= 0:
            raise InvalidParameterError(f"Zipf exponent must be > 0, got {s}")
        self.rng = rng
        self.s = s
        self.resolution = resolution

    def _rank_probs(self, k: int) -> np.ndarray:
        ranks = np.arange(1, k + 1, dtype=float)
        probs = ranks ** (-self.s)
        return probs / probs.sum()

    def integers(self, low: int, high: int) -> int:
        """One integer from ``[low, high]``, small values most likely."""
        if low > high:
            raise InvalidParameterError(f"empty range [{low}, {high}]")
        k = high - low + 1
        rank = int(self.rng.choice(k, p=self._rank_probs(k)))
        return low + rank

    def unit(self, size: int = 1) -> np.ndarray:
        """``size`` floats in ``[0, 1]`` with a Zipf-skew toward 0."""
        probs = self._rank_probs(self.resolution)
        ranks = self.rng.choice(self.resolution, size=size, p=probs)
        return ranks / (self.resolution - 1)

    def choice_weights(self, k: int) -> np.ndarray:
        """A Zipf probability vector over ``k`` categories."""
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        return self._rank_probs(k)


Sampler = Union[UniformSampler, ZipfSampler]


def make_sampler(distribution: Distribution, rng: np.random.Generator) -> Sampler:
    """Factory mapping a :class:`Distribution` to its sampler."""
    if distribution is Distribution.UNIFORM:
        return UniformSampler(rng)
    if distribution is Distribution.ZIPF:
        return ZipfSampler(rng)
    raise InvalidParameterError(f"unknown distribution {distribution!r}")
