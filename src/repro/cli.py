"""Command-line interface.

Thirteen subcommands cover the everyday workflow:

* ``gpssn generate`` — build a synthetic or simulated-real spatial-social
  network and save it as a JSON bundle;
* ``gpssn stats`` — print Table-2-style statistics of a bundle;
* ``gpssn freeze`` — compile a bundle (network + built indexes) into a
  zero-copy frozen snapshot that ``query``/``batch``/``serve`` memmap
  via ``--snapshot`` instead of rebuilding state per worker;
* ``gpssn query`` — answer a GP-SSN query (optionally top-k or sampled)
  against a bundle;
* ``gpssn batch`` — answer a JSONL file of queries concurrently through
  the batch executor (``--workers N``, serial/thread/process backends)
  and write JSONL outcomes;
* ``gpssn serve`` — run the long-lived query daemon: ``POST /query``
  (same JSONL schema as ``batch``) on a warm worker pool with admission
  control, plus the live observability plane (``/metrics`` Prometheus
  exposition, ``/healthz``, ``/readyz``, ``/status`` dashboard,
  ``?trace=1`` request tracing);
* ``gpssn profile`` — answer a query repeatedly under the stdlib
  sampling profiler and print per-phase CPU attribution plus the
  hottest frames (``--out`` collapsed stacks, ``--flamegraph`` HTML);
* ``gpssn explain`` — answer the same query with the pruning funnel
  recorded and print the EXPLAIN ANALYZE report (``--json`` for the
  machine-readable document);
* ``gpssn calibrate`` — selectivity diagnostics of a bundle;
* ``gpssn tune`` — suggest (gamma, theta, r) from the data
  distributions (the paper's Section-2.2 percentile rule);
* ``gpssn figure`` — regenerate one of the paper's figures/tables at a
  chosen scale and print the rows;
* ``gpssn mutate`` — synthesize a deterministic mutation stream
  (move_user / add_friend / remove_friend / add_poi / remove_poi) for a
  bundle as JSONL;
* ``gpssn replay`` — stream a mutation JSONL against standing queries
  with incremental index maintenance, optionally cross-checking every
  prefix against a from-scratch rebuild (``--oracle-every``) and saving
  the mutated network (``--save-bundle``) for a cold-batch diff.

Usable as ``python -m repro.cli`` or via the ``gpssn`` console script.

Exit codes are diagnostic, so CI smoke jobs cannot silently pass on a
failure: 0 success (including "query answered, no group found"), 1
unexpected internal error, :data:`EXIT_INPUT` (2) unreadable/invalid
inputs, :data:`EXIT_QUERY` (3) domain errors (unknown user, infeasible
parameters), :data:`EXIT_BATCH` (5) batch completed with failed items.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from .config import DISTANCE_ENGINES
from .core.algorithm import GPSSNQueryProcessor
from .core.metrics import InterestMetric
from .core.query import GPSSNQuery
from .core.tuning import suggest_parameters
from .exceptions import GPSSNError, InvalidParameterError, SnapshotFormatError
from .experiments.calibration import calibrate, calibration_rows
from .datagen.realworld import dataset_stats
from .experiments import figures as figure_drivers
from .experiments.harness import DATASET_NAMES, ExperimentScale, build_dataset
from .experiments.reporting import format_table
from .io.bundle import load_network, save_network
from .obs import (
    Recorder,
    explain_report,
    explain_to_json,
    format_stats_line,
    phase_table,
    prometheus_text,
    write_trace_jsonl,
)
from .service import (
    BACKENDS,
    BatchQueryExecutor,
    ExecutionLimits,
    ProtocolError,
    outcome_lines,
    parse_query_lines,
)

#: Exit codes (0 = success, 1 = unexpected error, the rest diagnostic).
EXIT_OK = 0
EXIT_INPUT = 2
EXIT_QUERY = 3
EXIT_BATCH = 5


class CLIError(Exception):
    """A user-reportable failure carrying its process exit code."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(message)
        self.code = code


def _load_network(path: str):
    """Load a bundle, mapping every failure mode to :data:`EXIT_INPUT`."""
    try:
        return load_network(path)
    except (OSError, json.JSONDecodeError, InvalidParameterError) as exc:
        raise CLIError(EXIT_INPUT, f"cannot load bundle {path}: {exc}")


def _frozen_snapshot(path: str):
    """A frozen-mode :class:`NetworkSnapshot`, or :data:`EXIT_INPUT`."""
    from .service.executor import NetworkSnapshot

    try:
        return NetworkSnapshot.from_frozen(path)
    except (OSError, SnapshotFormatError) as exc:
        raise CLIError(EXIT_INPUT, f"cannot open snapshot {path}: {exc}")


def _require_one_input(args: argparse.Namespace) -> None:
    """``--input`` and ``--snapshot`` are exclusive and one is required."""
    if args.input and getattr(args, "snapshot", None):
        raise CLIError(
            EXIT_INPUT, "use either --input or --snapshot, not both"
        )
    if not args.input and not getattr(args, "snapshot", None):
        raise CLIError(EXIT_INPUT, "one of --input or --snapshot is required")

FIGURE_DRIVERS = {
    "table2": figure_drivers.table2_datasets,
    "fig7a": figure_drivers.fig7a_index_object_pruning,
    "fig7b": figure_drivers.fig7b_user_pruning,
    "fig7c": figure_drivers.fig7c_poi_pruning,
    "fig7d": figure_drivers.fig7d_pair_pruning,
    "fig8": figure_drivers.fig8_vs_baseline,
    "fig9": figure_drivers.fig9_group_size,
    "fig10": figure_drivers.fig10_num_pois,
    "fig11": figure_drivers.fig11_road_size,
    "gamma": figure_drivers.appendix_gamma,
    "theta": figure_drivers.appendix_theta,
    "radius": figure_drivers.appendix_radius,
    "pivots": figure_drivers.appendix_pivots,
    "social-size": figure_drivers.appendix_social_size,
    "ablation": figure_drivers.ablation_pruning,
    "phases": figure_drivers.phase_breakdown,
}


def _add_query_args(parser: argparse.ArgumentParser) -> None:
    """The query-shaped argument set shared by ``query`` and ``explain``."""
    parser.add_argument("--input", default=None, help="bundle path (.json)")
    parser.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="memmap a frozen snapshot (gpssn freeze) instead of "
        "rebuilding from a bundle; the snapshot's recorded build recipe "
        "(seed, distance engine) wins over the matching flags",
    )
    parser.add_argument("--user", type=int, required=True)
    parser.add_argument("--tau", type=int, default=5)
    parser.add_argument("--gamma", type=float, default=0.5)
    parser.add_argument("--theta", type=float, default=0.5)
    parser.add_argument("--radius", type=float, default=2.0)
    parser.add_argument(
        "--metric", choices=[m.value for m in InterestMetric], default="dot"
    )
    parser.add_argument(
        "--distance-engine", choices=list(DISTANCE_ENGINES), default="plain",
        help="dist_RN engine: plain Dijkstra, the CSR array kernel, or "
        "the contraction hierarchy (offline preprocessing, fastest "
        "point-to-point queries)",
    )
    parser.add_argument("--topk", type=int, default=1)
    parser.add_argument("--max-groups", type=int, default=None)
    parser.add_argument(
        "--sampled", type=int, default=None, metavar="N",
        help="use subset-sampling refinement with N sampled groups",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record a span trace of the query and write it as JSON "
        "lines to PATH; also prints the per-phase timing table",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the query's metrics registry (counters, histograms) "
        "to PATH in Prometheus text format",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gpssn",
        description="Group planning queries over spatial-social networks "
        "(GP-SSN, ICDE 2023 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a dataset bundle")
    gen.add_argument("--dataset", choices=DATASET_NAMES, default="UNI")
    gen.add_argument("--users", type=int, default=300)
    gen.add_argument("--pois", type=int, default=100)
    gen.add_argument("--road-vertices", type=int, default=300)
    gen.add_argument("--keywords", type=int, default=5)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--output", required=True, help="bundle path (.json)")

    stats = sub.add_parser("stats", help="print bundle statistics")
    stats.add_argument("--input", required=True)

    frz = sub.add_parser(
        "freeze",
        help="compile a bundle into a zero-copy frozen snapshot "
        "(memmap arena) for --snapshot attach",
    )
    frz.add_argument("--input", required=True, help="bundle path (.json)")
    frz.add_argument(
        "--output", required=True, help="snapshot path (.gpssnap)"
    )
    frz.add_argument(
        "--distance-engine", choices=list(DISTANCE_ENGINES), default="plain",
        help="dist_RN engine baked into the snapshot (ch also freezes "
        "the preprocessed hierarchy)",
    )
    frz.add_argument("--seed", type=int, default=7)
    frz.add_argument(
        "--no-index", action="store_true",
        help="freeze the network arrays only; workers rebuild pivot "
        "tables and R*-trees on attach",
    )

    query = sub.add_parser("query", help="answer a GP-SSN query")
    _add_query_args(query)

    batch = sub.add_parser(
        "batch",
        help="answer a JSONL file of GP-SSN queries through the "
        "concurrent batch executor",
    )
    batch.add_argument("--input", default=None, help="bundle path (.json)")
    batch.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="attach workers to a frozen snapshot (gpssn freeze) "
        "instead of rebuilding per worker",
    )
    batch.add_argument(
        "--queries", required=True,
        help="JSONL query file: one object per line with a required "
        '"user" and optional "tau", "gamma", "theta", "radius", '
        '"metric", "max_groups"',
    )
    batch.add_argument(
        "--output", default=None,
        help="write JSONL outcomes here (default: stdout)",
    )
    batch.add_argument(
        "--workers", type=int, default=0,
        help="worker count; 0 runs the serial correctness oracle",
    )
    batch.add_argument(
        "--backend", choices=BACKENDS + ("auto",), default="auto",
        help="executor backend (auto: serial when --workers 0, "
        "else process)",
    )
    batch.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="per-query time budget; overruns become 'timeout' outcomes",
    )
    batch.add_argument(
        "--retries", type=int, default=0,
        help="retries for unexpected per-query errors (domain errors "
        "and timeouts are never retried)",
    )
    batch.add_argument(
        "--distance-engine", choices=list(DISTANCE_ENGINES), default="plain",
    )
    batch.add_argument("--max-groups", type=int, default=None,
                       help="default refinement cap for lines without one")
    batch.add_argument("--seed", type=int, default=7)
    batch.add_argument(
        "--timing", action="store_true",
        help="include run-variant fields (attempts, duration, worker) "
        "in each outcome line; off by default so outcomes are "
        "byte-comparable across backends and worker counts",
    )
    batch.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record the service.batch span tree as JSON lines",
    )
    batch.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write batch/worker metrics in Prometheus text format",
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-lived query daemon with the live "
        "observability plane (/query, /metrics, /healthz, /readyz, "
        "/status)",
    )
    serve.add_argument("--input", default=None, help="bundle path (.json)")
    serve.add_argument(
        "--snapshot", default=None, metavar="PATH",
        help="serve a frozen snapshot (gpssn freeze); workers memmap "
        "the shared arena instead of rebuilding",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 picks a free one and prints it)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="warm query workers (concurrent requests beyond this wait "
        "in the admission queue)",
    )
    serve.add_argument(
        "--backend", choices=("serial", "thread", "process"),
        default="thread",
        help="worker backend; serial is thread with one worker",
    )
    serve.add_argument(
        "--max-queue", type=int, default=16,
        help="requests allowed to wait beyond the executing ones; "
        "overflow is rejected with HTTP 429",
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0, metavar="SEC",
        help="per-query time budget (0 disables it); overruns become "
        "'timeout' outcome lines",
    )
    serve.add_argument(
        "--access-log", metavar="PATH", default=None,
        help="append one JSON object per request (ts, request_id, "
        "status, duration) to PATH",
    )
    serve.add_argument(
        "--slow-query", type=float, default=0.25, metavar="SEC",
        help="queries slower than this land in the /status slow-query "
        "ring",
    )
    serve.add_argument(
        "--window", type=float, default=300.0, metavar="SEC",
        help="rolling window width for the /metrics latency percentiles",
    )
    serve.add_argument(
        "--explain", action="store_true",
        help="record the per-rule pruning funnel in every worker and "
        "export it on /metrics (adds per-candidate accounting overhead)",
    )
    serve.add_argument(
        "--no-phase-timing", action="store_true",
        help="disable per-phase span capture in workers (drops the "
        "/status per-phase latency table, removes tracing overhead)",
    )
    serve.add_argument(
        "--trace-sample", type=float, default=0.0, metavar="RATE",
        help="head-sample this fraction of requests for end-to-end "
        "tracing (deterministic in the request id; ?trace=1 always "
        "traces)",
    )
    serve.add_argument(
        "--profile", action="store_true",
        help="expose GET /debug/profile?seconds=N (in-process sampling "
        "profiler; collapsed/flamegraph/json formats)",
    )
    serve.add_argument(
        "--distance-engine", choices=list(DISTANCE_ENGINES), default="plain",
    )
    serve.add_argument("--max-groups", type=int, default=None,
                       help="default refinement cap for lines without one")
    serve.add_argument("--seed", type=int, default=7)

    profile = sub.add_parser(
        "profile",
        help="answer a query repeatedly under the sampling profiler and "
        "print per-phase CPU attribution plus the hottest frames",
    )
    _add_query_args(profile)
    profile.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run the query at least N times inside the profiled window",
    )
    profile.add_argument(
        "--min-seconds", type=float, default=1.0, metavar="SEC",
        help="keep repeating until at least this much wall time is "
        "sampled (short queries need many runs for stable profiles)",
    )
    profile.add_argument(
        "--interval-ms", type=float, default=5.0, metavar="MS",
        help="sampling interval in milliseconds",
    )
    profile.add_argument(
        "--out", metavar="PATH", default=None,
        help="write Brendan-Gregg collapsed stacks ('f;g;h count') to "
        "PATH for external flamegraph tooling",
    )
    profile.add_argument(
        "--flamegraph", metavar="PATH", default=None,
        help="write a self-contained flamegraph HTML page to PATH",
    )
    profile.add_argument(
        "--timer", choices=("thread", "signal"), default="thread",
        help="thread = wall-clock sampling of all threads (py-spy "
        "style); signal = SIGPROF on-CPU sampling (main thread only)",
    )

    explain = sub.add_parser(
        "explain",
        help="answer a GP-SSN query with the pruning funnel recorded "
        "and print the EXPLAIN ANALYZE report",
    )
    _add_query_args(explain)
    explain.add_argument(
        "--json", action="store_true",
        help="print the machine-readable explain document instead of "
        "the tree report",
    )

    calib = sub.add_parser(
        "calibrate", help="print selectivity diagnostics of a bundle"
    )
    calib.add_argument("--input", required=True)
    calib.add_argument("--samples", type=int, default=300)
    calib.add_argument("--seed", type=int, default=0)

    tune = sub.add_parser(
        "tune", help="suggest (gamma, theta, r) from the data distributions"
    )
    tune.add_argument("--input", required=True)
    tune.add_argument("--percentile", type=float, default=75.0)
    tune.add_argument("--seed", type=int, default=0)

    fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig.add_argument("--name", choices=sorted(FIGURE_DRIVERS), required=True)
    fig.add_argument("--users", type=int, default=300)
    fig.add_argument("--pois", type=int, default=100)
    fig.add_argument("--road-vertices", type=int, default=300)
    fig.add_argument("--queries", type=int, default=3)
    fig.add_argument("--seed", type=int, default=7)

    mut = sub.add_parser(
        "mutate",
        help="synthesize a deterministic JSONL mutation stream for a "
        "bundle (the input to gpssn replay and POST /update)",
    )
    mut.add_argument("--input", required=True, help="bundle path (.json)")
    mut.add_argument(
        "--count", type=int, default=100, help="number of mutations"
    )
    mut.add_argument("--seed", type=int, default=0)
    mut.add_argument(
        "--output", required=True, help="mutation JSONL path"
    )

    rep = sub.add_parser(
        "replay",
        help="stream a mutation JSONL against standing queries with "
        "incremental index maintenance (the offline twin of the "
        "daemon's POST /subscribe + /update plane)",
    )
    rep.add_argument("--input", required=True, help="bundle path (.json)")
    rep.add_argument(
        "--queries", required=True,
        help="JSONL standing-query file (batch protocol schema)",
    )
    rep.add_argument(
        "--mutations", required=True, help="mutation JSONL (gpssn mutate)"
    )
    rep.add_argument(
        "--output", default=None,
        help="write the final JSONL outcomes here (default: stdout)",
    )
    rep.add_argument(
        "--batch-size", type=int, default=1, metavar="N",
        help="mutations applied per re-answer point (1 = per-mutation "
        "skip testing, the finest granularity)",
    )
    rep.add_argument(
        "--oracle-every", type=int, default=0, metavar="N",
        help="every N mutations, rebuild a processor from scratch on "
        "the mutated network and require byte-identical outcomes "
        "(0 disables the check)",
    )
    rep.add_argument(
        "--save-bundle", metavar="PATH", default=None,
        help="save the post-stream network as a bundle (for a cold "
        "gpssn batch diff)",
    )
    rep.add_argument(
        "--distance-engine", choices=list(DISTANCE_ENGINES), default="plain",
    )
    rep.add_argument("--max-groups", type=int, default=None,
                     help="default refinement cap for lines without one")
    rep.add_argument("--seed", type=int, default=7)

    return parser


def cmd_generate(args: argparse.Namespace) -> int:
    scale = ExperimentScale(
        road_vertices=args.road_vertices,
        num_pois=args.pois,
        num_users=args.users,
        num_keywords=args.keywords,
    )
    network = build_dataset(args.dataset, scale, seed=args.seed)
    save_network(args.output, network)
    print(f"wrote {args.dataset} bundle to {args.output}: {network}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    network = _load_network(args.input)
    stats = dataset_stats(args.input, network)
    print(format_table(
        ["|V(G_s)|", "deg(G_s)", "|V(G_r)|", "deg(G_r)", "POIs", "d"],
        [[
            stats.social_users, round(stats.social_avg_degree, 2),
            stats.road_vertices, round(stats.road_avg_degree, 2),
            network.num_pois, network.num_keywords,
        ]],
        title=f"Statistics of {args.input}",
    ))
    return 0


def _recorder_from_args(
    args: argparse.Namespace, explaining: bool = False
) -> Recorder:
    """One recorder-construction path for ``query`` and ``explain``.

    ``explain`` always records spans + funnel; ``query`` records spans
    only when ``--trace`` asks for them, else stays at the zero-overhead
    default.
    """
    if explaining:
        return Recorder.explaining()
    if args.trace:
        return Recorder.traced()
    return Recorder()


def _execute_query(processor: GPSSNQueryProcessor, args: argparse.Namespace):
    """Dispatch to the right entry point; returns ``(answers, stats)``."""
    query = GPSSNQuery(
        query_user=args.user, tau=args.tau, gamma=args.gamma,
        theta=args.theta, radius=args.radius,
        metric=InterestMetric(args.metric),
    )
    if args.sampled is not None:
        answer, stats = processor.answer_sampled(
            query, num_samples=args.sampled, seed=args.seed
        )
        answers = [answer] if answer.found else []
    elif args.topk > 1:
        answers, stats = processor.answer_topk(
            query, args.topk, max_groups=args.max_groups
        )
    else:
        answer, stats = processor.answer(query, max_groups=args.max_groups)
        answers = [answer] if answer.found else []
    return answers, stats


def _emit_recorder_outputs(
    recorder: Recorder, args: argparse.Namespace
) -> None:
    """The ``--trace`` / ``--metrics-out`` side outputs both commands share."""
    if args.trace:
        count = write_trace_jsonl(recorder.tracer.roots, args.trace)
        print(phase_table(recorder.tracer.roots))
        print(f"wrote {count} spans to {args.trace}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            fp.write(prometheus_text(recorder.metrics, recorder.explain))
        print(f"wrote metrics to {args.metrics_out}")


def _print_answers(answers) -> None:
    if not answers:
        print("no (S, R) pair satisfies the GP-SSN predicates")
    for rank, answer in enumerate(answers, start=1):
        print(
            f"#{rank}: S={sorted(answer.users)} R={sorted(answer.pois)} "
            f"maxdist={answer.max_distance:.4f}"
        )


def _processor_from_args(
    args: argparse.Namespace, recorder: Recorder
) -> GPSSNQueryProcessor:
    """Resolve ``--snapshot``/``--input`` into a ready processor."""
    _require_one_input(args)
    if args.snapshot:
        _, processor = _frozen_snapshot(args.snapshot).build_worker(recorder)
        return processor
    network = _load_network(args.input)
    return GPSSNQueryProcessor(
        network, seed=args.seed, recorder=recorder,
        distance_engine=args.distance_engine,
    )


def cmd_freeze(args: argparse.Namespace) -> int:
    from .io.snapshot import freeze

    network = _load_network(args.input)
    meta = freeze(
        network,
        args.output,
        build_args={
            "seed": args.seed, "distance_engine": args.distance_engine,
        },
        include_indexes=not args.no_index,
    )
    import os

    size = os.path.getsize(args.output)
    counts = meta["counts"]
    print(
        f"froze {args.input} -> {args.output}: {size} bytes, "
        f"{counts['vertices']} vertices, {counts['pois']} POIs, "
        f"{counts['users']} users, engine={meta['distance_engine']}, "
        f"indexes={'yes' if meta.get('index') else 'no'}"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    recorder = _recorder_from_args(args)
    processor = _processor_from_args(args, recorder)
    answers, stats = _execute_query(processor, args)
    _print_answers(answers)
    print(format_stats_line(stats))
    _emit_recorder_outputs(recorder, args)
    return 0


def _load_batch_entries(
    path: str, default_max_groups: Optional[int]
) -> List[Tuple[GPSSNQuery, Optional[int]]]:
    """Parse a JSONL query file into executor entries (strict).

    The parse itself lives in :mod:`repro.service.protocol` — the same
    code path the ``gpssn serve`` daemon runs on ``POST /query`` bodies,
    so the two entry points accept exactly the same inputs.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        raise CLIError(EXIT_INPUT, f"cannot read queries {path}: {exc}")
    try:
        return parse_query_lines(lines, default_max_groups)
    except ProtocolError as exc:
        raise CLIError(EXIT_INPUT, exc.located(path))


def cmd_batch(args: argparse.Namespace) -> int:
    _require_one_input(args)
    entries = _load_batch_entries(args.queries, args.max_groups)
    recorder = _recorder_from_args(args)
    limits = ExecutionLimits(timeout_sec=args.timeout, retries=args.retries)
    if args.snapshot:
        executor = BatchQueryExecutor(
            None,
            workers=args.workers,
            backend=args.backend,
            limits=limits,
            recorder=recorder,
            snapshot=_frozen_snapshot(args.snapshot),
        )
    else:
        network = _load_network(args.input)
        executor = BatchQueryExecutor(
            network,
            workers=args.workers,
            backend=args.backend,
            limits=limits,
            build_args={
                "seed": args.seed, "distance_engine": args.distance_engine,
            },
            recorder=recorder,
        )
    with executor:
        outcomes = executor.run_entries(entries)
    lines = outcome_lines(outcomes, timing=args.timing)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    else:
        for line in lines:
            print(line)
    failed = sum(not o.ok for o in outcomes)
    summary = (
        f"batch: {len(outcomes)} queries, {len(outcomes) - failed} ok, "
        f"{failed} failed ({executor.backend} backend, "
        f"{executor.workers} workers)"
    )
    # Keep stdout pure JSONL when outcomes go there.
    print(summary, file=sys.stdout if args.output else sys.stderr)
    _emit_recorder_outputs(recorder, args)
    return EXIT_BATCH if failed else EXIT_OK


def cmd_serve(args: argparse.Namespace) -> int:
    # Imported here, not at module top: the daemon pulls in the stdlib
    # HTTP server machinery, which no other subcommand needs.
    from .service.server import ServerConfig, serve as run_server

    _require_one_input(args)
    snapshot = _frozen_snapshot(args.snapshot) if args.snapshot else None
    network = _load_network(args.input) if args.input else None
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            backend=args.backend,
            max_queue=args.max_queue,
            timeout_sec=args.timeout if args.timeout > 0 else None,
            default_max_groups=args.max_groups,
            access_log_path=args.access_log,
            slow_query_sec=args.slow_query,
            window_sec=args.window,
            explain=args.explain,
            phase_timing=not args.no_phase_timing,
            trace_sample_rate=args.trace_sample,
            profile_endpoint=args.profile,
        )
    except InvalidParameterError as exc:
        raise CLIError(EXIT_INPUT, str(exc))

    def announce(host: str, port: int) -> None:
        print(
            f"gpssn serve: listening on http://{host}:{port} "
            f"({config.backend} backend, {args.workers} workers, "
            f"queue {config.max_queue}); warming workers ...",
            flush=True,
        )

    run_server(
        network,
        config,
        build_args=None if snapshot else {
            "seed": args.seed, "distance_engine": args.distance_engine,
        },
        ready_message=announce,
        snapshot=snapshot,
    )
    return EXIT_OK


def cmd_profile(args: argparse.Namespace) -> int:
    import time as _time

    from .obs import SamplingProfiler

    recorder = Recorder.traced()
    processor = _processor_from_args(args, recorder)
    # One warm run outside the profiled window, so index builds and
    # cold caches do not drown the steady-state profile.
    _execute_query(processor, args)
    try:
        profiler = SamplingProfiler(
            interval_sec=args.interval_ms / 1000.0,
            tracers=(recorder.tracer,),
            timer=args.timer,
        )
    except ValueError as exc:
        raise CLIError(EXIT_INPUT, str(exc))
    runs = 0
    answers: list = []
    stats = None
    started = _time.perf_counter()
    with profiler:
        while (
            runs < max(args.repeat, 1)
            or _time.perf_counter() - started < args.min_seconds
        ):
            answers, stats = _execute_query(processor, args)
            runs += 1
    report = profiler.report
    _print_answers(answers)
    print(format_stats_line(stats))
    print(
        f"profiled {runs} run{'s' if runs != 1 else ''}: "
        f"{report.num_samples} samples over {report.duration_sec:.2f}s "
        f"at {args.interval_ms:g} ms ({report.timer} timer)"
    )
    phases = report.phase_rows()
    if phases:
        print(format_table(
            ["phase", "samples", "share"],
            [[name, count, f"{share:.1%}"]
             for name, count, share in phases],
            title="Per-phase CPU attribution",
        ))
    top = report.top_functions(10)
    if top:
        print(format_table(
            ["frame", "self", "total"],
            [[frame, self_n, total_n] for frame, self_n, total_n in top],
            title="Hottest frames (by self samples)",
        ))
    if args.out:
        count = report.write_collapsed(args.out)
        print(f"wrote {count} collapsed stacks to {args.out}")
    if args.flamegraph:
        with open(args.flamegraph, "w", encoding="utf-8") as fp:
            fp.write(report.flamegraph_html())
        print(f"wrote flamegraph to {args.flamegraph}")
    _emit_recorder_outputs(recorder, args)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    recorder = _recorder_from_args(args, explaining=True)
    processor = _processor_from_args(args, recorder)
    answers, stats = _execute_query(processor, args)
    if args.json:
        print(explain_to_json(recorder.explain, stats=stats))
    else:
        _print_answers(answers)
        print(explain_report(recorder.explain, stats=stats))
    _emit_recorder_outputs(recorder, args)
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    scale = ExperimentScale(
        road_vertices=args.road_vertices,
        num_pois=args.pois,
        num_users=args.users,
    )
    driver = FIGURE_DRIVERS[args.name]
    if args.name == "table2":
        headers, rows = driver(scale, seed=args.seed)
    else:
        headers, rows = driver(scale, num_queries=args.queries, seed=args.seed)
    print(format_table(headers, rows, title=args.name))
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    network = _load_network(args.input)
    report = calibrate(network, num_samples=args.samples, seed=args.seed)
    headers, rows = calibration_rows(report)
    print(format_table(headers, rows, title=f"Calibration of {args.input}"))
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    network = _load_network(args.input)
    suggestion = suggest_parameters(
        network, percentile=args.percentile, seed=args.seed
    )
    print(format_table(
        ["parameter", "suggestion", "distribution quartiles (25/50/75)"],
        [
            ["gamma", suggestion.gamma, suggestion.interest_quartiles],
            ["theta", suggestion.theta, suggestion.matching_quartiles],
            ["r", suggestion.radius, suggestion.poi_distance_quartiles],
        ],
        title=f"Suggested parameters ({args.percentile}th percentile)",
    ))
    return 0


def cmd_mutate(args: argparse.Namespace) -> int:
    from .dynamic import synthesize_mutations

    network = _load_network(args.input)
    if args.count < 1:
        raise CLIError(EXIT_INPUT, f"--count must be >= 1, got {args.count}")
    try:
        log = synthesize_mutations(network, args.count, seed=args.seed)
    except InvalidParameterError as exc:
        raise CLIError(EXIT_INPUT, str(exc))
    log.dump(args.output)
    ops = sorted({m.op for m in log})
    print(
        f"wrote {len(log)} mutations to {args.output} "
        f"(seed {args.seed}, ops: {', '.join(ops)})"
    )
    return EXIT_OK


def _load_mutations(path: str):
    from .dynamic import MutationLog

    try:
        return MutationLog.load(path)
    except OSError as exc:
        raise CLIError(EXIT_INPUT, f"cannot read mutations {path}: {exc}")
    except InvalidParameterError as exc:
        raise CLIError(EXIT_INPUT, f"{path}: {exc}")


def cmd_replay(args: argparse.Namespace) -> int:
    """Stream mutations against standing queries, incrementally.

    With ``--oracle-every N`` the replay is self-checking: at every
    N-mutation boundary (and once at the end) a processor is rebuilt
    from scratch on the mutated network, the standing queries are
    re-answered cold, and the two outcome streams must be
    byte-identical — the dynamic layer's correctness contract.
    """
    from .dynamic import ContinuousQueryRegistry, DynamicIndexMaintainer

    if args.batch_size < 1:
        raise CLIError(
            EXIT_INPUT, f"--batch-size must be >= 1, got {args.batch_size}"
        )
    if args.oracle_every < 0:
        raise CLIError(
            EXIT_INPUT,
            f"--oracle-every must be >= 0, got {args.oracle_every}",
        )
    network = _load_network(args.input)
    entries = _load_batch_entries(args.queries, args.max_groups)
    log = _load_mutations(args.mutations)

    build_args = {"seed": args.seed, "distance_engine": args.distance_engine}
    processor = GPSSNQueryProcessor(network, **build_args)
    registry = ContinuousQueryRegistry(DynamicIndexMaintainer(processor))
    registry.subscribe(entries)

    def oracle_check(applied: int) -> None:
        fresh = GPSSNQueryProcessor(network, **build_args)
        cold = ContinuousQueryRegistry(DynamicIndexMaintainer(fresh))
        cold.subscribe(entries)
        incremental, rebuilt = registry.outcome_lines(), cold.outcome_lines()
        if incremental != rebuilt:
            for inc, ora in zip(incremental, rebuilt):
                if inc != ora:
                    print(f"  incremental: {inc}", file=sys.stderr)
                    print(f"  rebuilt:     {ora}", file=sys.stderr)
            raise CLIError(
                1,
                f"oracle mismatch after {applied} mutations: incremental "
                "outcomes differ from a from-scratch rebuild",
            )

    mutations = list(log)
    applied = 0
    skipped = dirty = 0
    while applied < len(mutations):
        batch = mutations[applied:applied + args.batch_size]
        report = registry.apply_batch(batch)
        skipped += report["skipped"]
        dirty += report["dirty"]
        applied += len(batch)
        if args.oracle_every and (
            applied % args.oracle_every == 0 or applied == len(mutations)
        ):
            oracle_check(applied)

    lines = registry.outcome_lines()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
    else:
        for line in lines:
            print(line)
    if args.save_bundle:
        save_network(args.save_bundle, network)
    outcomes = registry.outcomes()
    failed = sum(not o.ok for o in outcomes)
    stats = registry.describe()
    summary = (
        f"replay: {applied} mutations over {len(outcomes)} standing "
        f"queries, {skipped} skips, {dirty} re-answers triggered, "
        f"{stats['maintainer']['compactions']} compactions, "
        f"{failed} failed"
        + (f"; oracle checks every {args.oracle_every} ops passed"
           if args.oracle_every else "")
    )
    print(summary, file=sys.stdout if args.output else sys.stderr)
    return EXIT_BATCH if failed else EXIT_OK


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "stats": cmd_stats,
        "freeze": cmd_freeze,
        "query": cmd_query,
        "batch": cmd_batch,
        "serve": cmd_serve,
        "profile": cmd_profile,
        "explain": cmd_explain,
        "figure": cmd_figure,
        "calibrate": cmd_calibrate,
        "tune": cmd_tune,
        "mutate": cmd_mutate,
        "replay": cmd_replay,
    }
    try:
        return handlers[args.command](args)
    except CLIError as exc:
        print(f"gpssn: error: {exc}", file=sys.stderr)
        return exc.code
    except GPSSNError as exc:
        print(f"gpssn: query error: {exc}", file=sys.stderr)
        return EXIT_QUERY


if __name__ == "__main__":
    sys.exit(main())
