"""Exception hierarchy for the GP-SSN library.

All library-raised exceptions derive from :class:`GPSSNError` so callers can
catch one base type. Specific subclasses signal distinct failure modes:
construction errors (bad graphs, bad parameters) versus query-time errors
(unknown users, infeasible queries).
"""

from __future__ import annotations


class GPSSNError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphConstructionError(GPSSNError):
    """Raised when a road or social network is built with invalid inputs.

    Examples: duplicate vertex identifiers, an edge that references a
    missing vertex, or a non-positive edge length.
    """


class InvalidParameterError(GPSSNError):
    """Raised when a query or index parameter is out of its valid domain.

    Examples: a group size ``tau < 1``, a threshold outside ``[0, 1]``,
    or a non-positive spatial radius.
    """


class UnknownEntityError(GPSSNError):
    """Raised when a user, POI, or vertex identifier cannot be resolved."""


class InfeasibleQueryError(GPSSNError):
    """Raised when a GP-SSN query provably has no answer.

    This is distinct from an *empty* search: it is raised eagerly when the
    query is structurally impossible (for instance, the query user's
    connected component in the social network holds fewer than ``tau``
    users), so callers can distinguish "no match found" from "could never
    match".
    """


class IndexStateError(GPSSNError):
    """Raised when an index is used before it has been built or after it
    has been invalidated by a mutation of the underlying network."""


class SnapshotFormatError(GPSSNError):
    """Raised when a frozen snapshot file cannot be opened safely.

    Examples: a bad magic string, a truncated file whose section table
    points past the end, an unsupported format version, or a section
    whose checksum fails verification.
    """
