"""A scan-based competitor: object-level pruning without indexes.

Between the paper's two extremes — the exhaustive Baseline and the
fully indexed Algorithm 2 — sits a natural middle design: apply the
object-level pruning rules (Lemmas 1, 3, 4) by *linear scans* over all
users and POIs, then refine exactly like Algorithm 2. Comparing it with
the indexed processor isolates what the index structures themselves buy
(fewer page accesses, index-level pruning) from what the pruning rules
buy.

I/O accounting mirrors a sequential scan: one page per
:data:`OBJECTS_PER_PAGE` objects read.
"""

from __future__ import annotations

import math
import time
from math import comb
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import UnknownEntityError
from ..index.pivots import (
    RoadPivotIndex,
    SocialPivotIndex,
    pivot_lower_bound,
    select_pivots_road,
    select_pivots_social,
)
from ..network import SpatialSocialNetwork
from ..obs.registry import Recorder
from ..roadnet.shortest_path import position_distance_from_map
from .metrics import MetricScorer
from .pruning import social_distance_prunable
from .query import GPSSNAnswer, GPSSNQuery, QueryStatistics
from .refinement import (
    best_region_for_seed,
    enumerate_connected_groups,
    group_distance_maps,
)
from .scores import match_score

#: Packed objects per simulated page for sequential scans.
OBJECTS_PER_PAGE = 32


class ScanProcessor:
    """Object-level pruning via linear scans (no tree indexes).

    Uses the same pivots as the indexed processor (pivot tables are part
    of the pruning rules, not of the tree structures) but touches every
    user and POI once per query.
    """

    def __init__(
        self,
        network: SpatialSocialNetwork,
        num_road_pivots: int = 5,
        num_social_pivots: int = 5,
        seed: int = 7,
        road_pivots: Optional[RoadPivotIndex] = None,
        social_pivots: Optional[SocialPivotIndex] = None,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.recorder = recorder or Recorder()
        self.network = network
        rng = np.random.default_rng(seed)
        self.road_pivots = road_pivots or select_pivots_road(
            network.road, num_road_pivots, rng
        )
        self.social_pivots = social_pivots or select_pivots_social(
            network.social, num_social_pivots, rng
        )
        # Per-entity pivot distances, computed once (the offline part a
        # scan-based deployment would also have).
        self._user_social_dists: Dict[int, List[float]] = {
            uid: self.social_pivots.distances(uid)
            for uid in network.social.user_ids()
        }
        self._poi_sup: Dict[int, frozenset] = {}
        for poi in network.pois():
            region = network.pois_within(poi.poi_id, 2.0 * 4.0)
            self._poi_sup[poi.poi_id] = frozenset().union(
                *(network.poi(p).keywords for p in region)
            )

    def answer(
        self,
        query: GPSSNQuery,
        max_groups: Optional[int] = None,
    ) -> Tuple[GPSSNAnswer, QueryStatistics]:
        """Answer by scan-prune-refine."""
        network = self.network
        if not network.social.has_user(query.query_user):
            raise UnknownEntityError(f"unknown query user {query.query_user}")
        stats = QueryStatistics()
        stats.pruning.total_users = network.social.num_users
        stats.pruning.total_pois = network.num_pois
        started = time.perf_counter()
        scorer = MetricScorer(query.metric)
        rec = self.recorder
        ex = rec.explain if rec.explain.active else None
        uq = network.social.user(query.query_user)
        uq_social = self._user_social_dists[query.query_user]

        # --- user scan: Lemmas 3 and 4 over every user -----------------
        if ex is not None:
            ex.visit("scan.users", network.social.num_users)
        candidates = []
        for user in network.social.users():
            if user.user_id == query.query_user:
                candidates.append(user.user_id)
                continue
            lb_hops = pivot_lower_bound(
                self._user_social_dists[user.user_id], uq_social
            )
            if social_distance_prunable(lb_hops, query.tau):
                stats.pruning.social_object_pruned += 1
                stats.pruning.social_pruned_by_distance += 1
                if ex is not None:
                    ex.prune(
                        "scan.users", "obj.social_hops",
                        margin=lb_hops - query.tau,
                    )
                continue
            sc = scorer.score(uq.interests, user.interests)
            if sc < query.gamma:
                stats.pruning.social_object_pruned += 1
                stats.pruning.social_pruned_by_interest += 1
                if ex is not None:
                    ex.prune(
                        "scan.users", "obj.social_interest",
                        margin=query.gamma - sc,
                    )
                continue
            candidates.append(user.user_id)
        if ex is not None:
            ex.survive("scan.users", len(candidates))

        # --- POI scan: Lemma 1 over every POI ---------------------------
        if ex is not None:
            ex.visit("scan.pois", len(self._poi_sup))
        seeds = []
        for poi_id, sup in self._poi_sup.items():
            ms = match_score(uq.interests, sup)
            if ms < query.theta:
                stats.pruning.road_object_pruned += 1
                stats.pruning.road_pruned_by_matching += 1
                if ex is not None:
                    ex.prune(
                        "scan.pois", "obj.poi_matching",
                        margin=query.theta - ms,
                    )
                continue
            seeds.append(poi_id)
        if ex is not None:
            ex.survive("scan.pois", len(seeds))

        # sequential-scan I/O: every user + POI record read once
        objects_read = network.social.num_users + network.num_pois
        stats.page_accesses = math.ceil(objects_read / OBJECTS_PER_PAGE)
        stats.candidate_users = len(candidates)
        stats.candidate_pois = len(seeds)

        # --- refinement (identical to the indexed processor) -------------
        uq_map = network.distances.distances_from(
            ("user", query.query_user), uq.home
        )
        seed_dist = {
            pid: position_distance_from_map(
                network.road, uq_map, network.poi(pid).position, uq.home
            )
            for pid in seeds
        }
        ordered_seeds = sorted(
            seed_dist, key=lambda pid: (seed_dist[pid], pid)
        )

        best_value = math.inf
        best_pair = None
        for group in enumerate_connected_groups(
            network, query.query_user, query.tau, query.gamma,
            allowed=set(candidates), limit=max_groups,
            score_fn=scorer.score, explain=ex,
        ):
            stats.groups_refined += 1
            dist_maps = group_distance_maps(network, group)
            interests = [network.social.user(u).interests for u in group]
            if ex is not None:
                ex.visit("refine.pairs", len(ordered_seeds))
            for seed_rank, seed in enumerate(ordered_seeds):
                if seed_dist[seed] >= best_value:
                    if ex is not None:
                        ex.prune(
                            "refine.pairs", "pair.distance",
                            len(ordered_seeds) - seed_rank,
                            seed_dist[seed] - best_value,
                        )
                    break
                if ex is not None:
                    ex.survive("refine.pairs")
                stats.pruning.candidate_pairs_examined += 1
                region_ids = network.pois_within(seed, query.radius)
                result = best_region_for_seed(
                    network, interests, dist_maps, seed, region_ids,
                    query.theta,
                )
                if result is None:
                    continue
                pois, value = result
                if value < best_value:
                    best_value = value
                    best_pair = (frozenset(group), pois)

        stats.cpu_time_sec = time.perf_counter() - started
        m = network.social.num_users
        n = network.num_pois
        stats.pruning.total_possible_pairs = float(
            comb(max(m - 1, 0), min(query.tau - 1, max(m - 1, 0))) * n
        )
        rec.record_query(stats)
        if best_pair is None:
            return GPSSNAnswer.empty(), stats
        return (
            GPSSNAnswer(
                users=best_pair[0], pois=best_pair[1],
                max_distance=best_value,
            ),
            stats,
        )
