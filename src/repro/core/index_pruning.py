"""Index-level pruning (Section 4.2, Lemmas 6-9, Eqs. 15-19).

These predicates run during the Algorithm-2 traversal on whole index
nodes, discarding entire subtrees:

* Lemma 6 — matching-score pruning of road-index nodes via the hashed
  keyword-superset vector (Eq. 15);
* Lemma 7 — road-network distance pruning of road-index nodes via
  pivot-based upper/lower bounds (Eqs. 16-17) plus the Euclidean
  ``mindist`` guard;
* Lemma 8 — interest-score pruning of social-index nodes whose interest
  MBR lies entirely in the pruning region of the query user;
* Lemma 9 — social-distance pruning of social-index nodes via the
  pivot-gap lower bound (Eq. 19).

A note on bound direction: upper bounds may only *over*-estimate, lower
bounds only *under*-estimate. The hashed bit vectors over-approximate
keyword sets, so they appear only in the Lemma-6 *upper* bound; the
Eq. 18 *lower* bound evaluates the sample objects' exact keyword subsets.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..index.road_index import AugmentedPOI, RoadIndexNode
from ..index.social_index import SocialIndexNode
from .scores import match_score, match_score_bitvector
from .pruning import PruningRegion

# ---------------------------------------------------------------------------
# Road-network index pruning (Section 4.2.1)
# ---------------------------------------------------------------------------


def ub_match_score_road_node(
    interests: np.ndarray, node: RoadIndexNode
) -> float:
    """Eq. 15: matching-score upper bound from the node's keyword superset."""
    return match_score_bitvector(interests, node.sup_vector)


def road_node_matching_prunable(
    interests: np.ndarray, node: RoadIndexNode, theta: float
) -> bool:
    """Lemma 6: prune node ``e_R`` when ``ub_Match_Score(u, e_R) < theta``."""
    return ub_match_score_road_node(interests, node) < theta


def ub_match_score_poi(interests: np.ndarray, poi: AugmentedPOI) -> float:
    """Object-level Eq. 15 analogue: the POI's own superset vector."""
    return match_score_bitvector(interests, poi.sup_vector)


def ub_maxdist_road_node(
    s_ub_pivot_dists: Sequence[float],
    node_ub_pivot_dists: Sequence[float],
    radius: float,
) -> float:
    """Eq. 16: pivot-based *upper* bound of ``maxdist_RN(S, e_R)``.

    ``min_k { max_{u in S} dist(u, rp_k) + ub_dist(e_R, rp_k) + 2r }``.

    Args:
        s_ub_pivot_dists: per-pivot upper bounds of the user-set side
            (``max_{u in S} dist_RN(u, rp_k)``, or the node ``ub`` when S
            still holds index nodes).
        node_ub_pivot_dists: the road node's ``ub_dist_RN(e_R, rp_k)``.
        radius: the query radius ``r``; the ``2r`` term covers the spread
            of the candidate region around its POIs.
    """
    best = math.inf
    for s_ub, n_ub in zip(s_ub_pivot_dists, node_ub_pivot_dists):
        bound = s_ub + n_ub + 2.0 * radius
        if bound < best:
            best = bound
    return best


def lb_maxdist_road_node(
    uq_pivot_dists: Sequence[float],
    node_lb_pivot_dists: Sequence[float],
    node_ub_pivot_dists: Sequence[float],
) -> float:
    """Eq. 17: pivot-based *lower* bound of ``maxdist_RN(S, e_R)``.

    Uses only the query user (who is guaranteed to be in S): per pivot,
    the gap between ``dist(u_q, rp_k)`` and the node's distance interval
    ``[lb, ub]`` lower-bounds the distance from ``u_q`` to every POI
    under the node.
    """
    best = 0.0
    for d_q, lb, ub in zip(uq_pivot_dists, node_lb_pivot_dists, node_ub_pivot_dists):
        if math.isinf(d_q) or math.isinf(lb) or math.isinf(ub):
            continue
        if d_q < lb:
            gap = lb - d_q
        elif d_q > ub:
            gap = d_q - ub
        else:
            gap = 0.0
        if gap > best:
            best = gap
    return best


def road_node_pair_prunable(
    lb_maxdist_candidate: float,
    ub_maxdist_witness: float,
    euclid_mindist: float,
    radius: float,
) -> bool:
    """Lemma 7: prune ``e_Ri`` against a witness node ``e_Rj``.

    Requires both the distance domination
    ``lb_maxdist(S, e_Ri) > ub_maxdist(S, e_Rj)`` and the spatial
    separation ``mindist(e_Ri, e_Rj) > 2r`` (so no candidate region can
    straddle the two nodes).
    """
    return (
        lb_maxdist_candidate > ub_maxdist_witness
        and euclid_mindist > 2.0 * radius
    )


def lb_match_score_road_node(
    user_interest_vectors: Sequence[np.ndarray],
    node: RoadIndexNode,
) -> float:
    """Eq. 18: matching-score *lower* bound from the node's sample objects.

    ``max_{sample o_i} min_{u_j in S} Match_Score(u_j, o_i.sub_K)`` —
    evaluated on the samples' exact keyword subsets (a hashed vector
    would not give a valid lower bound).
    """
    if not node.samples or not user_interest_vectors:
        return 0.0
    best = 0.0
    for sample in node.samples:
        worst_user = min(
            match_score(w, sample.sub_keywords) for w in user_interest_vectors
        )
        if worst_user > best:
            best = worst_user
    return best


# ---------------------------------------------------------------------------
# Social-network index pruning (Section 4.2.2)
# ---------------------------------------------------------------------------


def social_node_interest_prunable(
    region: PruningRegion, node: SocialIndexNode
) -> bool:
    """Lemma 8: prune ``e_S`` when its interest MBR lies in ``PR(u_q)``."""
    return region.contains_mbr(node.interest_mbr)


def lb_dist_sn_social_node(
    uq_pivot_dists: Sequence[float],
    node: SocialIndexNode,
) -> float:
    """Eq. 19: pivot-gap lower bound of ``dist_SN(u_q, e_S)``.

    Per social pivot ``sp_k``, any user under ``e_S`` is between
    ``lb_dist_SN(e_S, sp_k)`` and ``ub_dist_SN(e_S, sp_k)`` hops from the
    pivot; the gap to ``dist_SN(u_q, sp_k)`` lower-bounds the hops from
    ``u_q``. A one-sided infinity means ``u_q`` and the node provably sit
    in different components, giving an infinite bound.
    """
    best = 0.0
    for d_q, lb, ub in zip(uq_pivot_dists, node.lb_social_pivot, node.ub_social_pivot):
        q_inf = math.isinf(d_q)
        if q_inf:
            if not math.isinf(ub):
                # Every user under the node reaches pivot k but u_q does
                # not: the whole node lies in other components.
                return math.inf
            # Some users share u_q's unreachability — they might sit in
            # u_q's own component, so this pivot gives no information.
            continue
        if math.isinf(lb):
            # All users unreachable from pivot k while u_q is reachable:
            # provably different components.
            return math.inf
        if math.isinf(ub):
            # Mixed node: only the lb-side gap is safe (unreachable
            # members are provably in other components, hence farther).
            gap = lb - d_q if d_q < lb else 0.0
        elif d_q < lb:
            gap = lb - d_q
        elif d_q > ub:
            gap = d_q - ub
        else:
            gap = 0.0
        if gap > best:
            best = gap
    return best


def social_node_distance_prunable(lb_hops: float, tau: int) -> bool:
    """Lemma 9: prune ``e_S`` when ``lb_dist_SN(u_q, e_S) >= tau``."""
    return lb_hops >= tau


# ---------------------------------------------------------------------------
# Explain rule registry (index level)
# ---------------------------------------------------------------------------

#: Stable rule IDs for the index-level (subtree) pruning decisions; see
#: :data:`repro.core.pruning.OBJECT_RULES` for the margin convention.
#: Prune counts for these rules are in *objects under the discarded
#: subtree* (POIs or users), matching PruningCounters semantics, so the
#: funnel invariant holds at object granularity.
INDEX_RULES = {
    "idx.road_matching": {
        "lemma": "Lemma 6 / Eq. 15",
        "figure": "Fig. 7a/7c",
        "margin_unit": "theta - ub_match_score",
        "description": "road-index node keyword-superset matching bound "
        "misses theta",
    },
    "idx.road_distance": {
        "lemma": "Lemma 7 / Eqs. 16-17",
        "figure": "Fig. 7a/7c",
        "margin_unit": "lb_maxdist - delta",
        "description": "road-index node distance lower bound exceeds the "
        "best-pair upper bound delta",
    },
    "idx.social_interest": {
        "lemma": "Lemma 8",
        "figure": "Fig. 7a/7b",
        "margin_unit": "gamma - ub_interest_score",
        "description": "social-index node interest MBR lies entirely in "
        "PR(u_q)",
    },
    "idx.social_hops": {
        "lemma": "Lemma 9 / Eq. 19",
        "figure": "Fig. 7a/7b",
        "margin_unit": "lb_hops - tau",
        "description": "social-index node pivot-gap hop bound reaches tau",
    },
}
