"""Core GP-SSN query machinery: scores, pruning, Algorithm 2, baseline.

Layout mirrors the paper:

* :mod:`~repro.core.scores` -- Eqs. 1-2 and the bound variants;
* :mod:`~repro.core.pruning` -- object-level pruning (Section 3);
* :mod:`~repro.core.index_pruning` -- index-level pruning (Section 4.2);
* :mod:`~repro.core.query` -- query/answer/statistics types;
* :mod:`~repro.core.refinement` -- group enumeration and region building;
* :mod:`~repro.core.algorithm` -- the dual-index traversal (Section 5);
* :mod:`~repro.core.baseline` -- the exhaustive competitor (Section 6.1).
"""

from .algorithm import GPSSNQueryProcessor, PruningToggles
from .baseline import BaselineCostEstimate, BaselineProcessor
from .metrics import InterestMetric, MetricScorer
from .scan import ScanProcessor
from .tuning import SuggestedParameters, suggest_parameters
from .query import GPSSNAnswer, GPSSNQuery, PruningCounters, QueryStatistics

__all__ = [
    "GPSSNQuery",
    "GPSSNAnswer",
    "QueryStatistics",
    "PruningCounters",
    "GPSSNQueryProcessor",
    "PruningToggles",
    "BaselineProcessor",
    "BaselineCostEstimate",
    "InterestMetric",
    "MetricScorer",
    "ScanProcessor",
    "SuggestedParameters",
    "suggest_parameters",
]
