"""Object-level pruning strategies (Section 3).

This module implements the paper's three pruning families exactly as
stated:

* **Matching score pruning** (Lemma 1, via the Lemma 2 monotonicity):
  a POI region is discarded when even the matching score of its keyword
  *superset* misses the threshold ``theta``.
* **User pruning** (Lemmas 3-4, Corollaries 1-2): users failing the
  pairwise interest threshold ``gamma`` — tested either directly or via
  the geometric halfplane :class:`PruningRegion` — and users more than
  ``tau - 1`` hops from the query user.
* **Road-network distance pruning** (Lemma 5 with Eqs. 5-6): candidate
  pairs whose distance *lower* bound already exceeds another pair's
  *upper* bound.

Every predicate here answers "can this candidate be *safely* discarded";
soundness of each is exercised against brute force in the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from ..geometry import MBR, euclidean
from .scores import interest_score

# ---------------------------------------------------------------------------
# Matching score pruning (Section 3.1)
# ---------------------------------------------------------------------------


def matching_score_prunable(ub_match_score: float, theta: float) -> bool:
    """Lemma 1: prune the POI set when ``ub_Match_Score < theta``."""
    return ub_match_score < theta


# ---------------------------------------------------------------------------
# Interest-score user pruning (Section 3.2)
# ---------------------------------------------------------------------------


def interest_score_prunable(
    w_j: np.ndarray, w_k: np.ndarray, gamma: float
) -> bool:
    """Lemma 3: prune ``u_k`` when ``Interest_Score(u_j, u_k) < gamma``."""
    return interest_score(w_j, w_k) < gamma


class PruningRegion:
    """The halfplane pruning region ``PR(u_j)`` of Section 3.2.

    Geometry: let ``B = u_j.w``. The hyperplane ``{x : x · B = gamma}``
    splits the interest space; the halfplane containing the origin is the
    pruning region (every vector there has ``Interest_Score < gamma``).
    The paper materializes the test with the reflection point
    ``B' = B * (2*gamma - ||B||^2) / ||B||^2`` and distance comparisons
    against ``B`` and ``B'``:

    * Case 1 (``||B||^2 >= gamma``): prune ``x`` iff
      ``dist(x, B') < dist(x, B)``;
    * Case 2 (``||B||^2 < gamma``): prune ``x`` iff
      ``dist(x, B') > dist(x, B)``.

    For an index node's interest MBR the same comparison runs on
    ``maxdist``/``mindist`` (Lemma 8) and is conservative: it prunes only
    when *every* point of the box lies in the region.
    """

    def __init__(self, anchor: np.ndarray, gamma: float) -> None:
        anchor = np.asarray(anchor, dtype=float)
        if anchor.ndim != 1:
            raise InvalidParameterError("anchor interest vector must be 1-D")
        if gamma < 0:
            raise InvalidParameterError(f"gamma must be >= 0, got {gamma}")
        self.anchor = anchor
        self.gamma = float(gamma)
        self._norm_sq = float(np.dot(anchor, anchor))
        if self._norm_sq == 0.0:
            # A zero anchor vector scores 0 with everyone: if gamma > 0 the
            # whole space is prunable, if gamma == 0 nothing is.
            self.b_point = anchor
            self.b_prime = anchor
            self.case1 = True
            self._degenerate = True
        else:
            self.b_point = anchor
            scale = (2.0 * self.gamma - self._norm_sq) / self._norm_sq
            self.b_prime = anchor * scale
            self.case1 = self._norm_sq >= self.gamma
            self._degenerate = False
        # When ||B||^2 == gamma, B lies exactly on the hyperplane and
        # B' coincides with B, so the distance comparison cannot decide
        # the halfplane; fall back to the direct dot-product test there.
        # Same fallback when ||B||^2 underflows toward the denormal
        # range: the B' reflection divides by it and loses every
        # significant digit, so the distance comparison no longer
        # decides the halfplane either.
        self._on_plane = not self._degenerate and (
            self._norm_sq == self.gamma or self._norm_sq < 1e-280
        )

    # -- point test (Corollary 1) ---------------------------------------------

    def contains_vector(self, w: Sequence[float]) -> bool:
        """True when interest vector ``w`` falls in the pruning region."""
        w = np.asarray(w, dtype=float)
        if self._degenerate:
            return self.gamma > 0.0
        if self._on_plane:
            return float(np.dot(w, self.anchor)) < self.gamma
        d_b = euclidean(w, self.b_point)
        d_bp = euclidean(w, self.b_prime)
        if self.case1:
            return d_bp < d_b
        return d_bp > d_b

    # -- MBR test (Lemma 8) ------------------------------------------------------

    def contains_mbr(self, box: MBR) -> bool:
        """True when the *entire* interest box lies in the pruning region.

        The region is the halfplane ``{x : x · B < gamma}`` and interest
        probabilities are non-negative, so the box maximum of the linear
        form ``x · B`` is attained at the upper corner: the box is fully
        inside iff ``high · B < gamma``. This is the exact form of the
        paper's Lemma-8 check (the distance comparison against ``B`` and
        ``B'`` decides the same halfplane, conservatively; see
        :meth:`contains_mbr_geometric`).
        """
        if self._degenerate:
            return self.gamma > 0.0
        upper = sum(h * b for h, b in zip(box.high, self.b_point))
        return upper < self.gamma

    def contains_mbr_geometric(self, box: MBR) -> bool:
        """The paper's literal B/B' distance comparison on MBRs.

        Case 1 requires ``maxdist(box, B') < mindist(box, B)``; Case 2
        requires ``maxdist(box, B) < mindist(box, B')``. Conservative: it
        may return False for a box that :meth:`contains_mbr` (the exact
        test) accepts, but it never accepts a box that straddles the
        hyperplane. Retained for fidelity and cross-checked in tests.
        """
        if self._degenerate:
            return self.gamma > 0.0
        if self._on_plane:
            # B' is meaningless here (see __init__); the exact linear
            # test decides the same halfplane without it.
            return self.contains_mbr(box)
        if self.case1:
            return box.maxdist_point(self.b_prime) < box.mindist_point(self.b_point)
        return box.maxdist_point(self.b_point) < box.mindist_point(self.b_prime)


def corollary2_prunable(
    candidate: int,
    region_membership: Dict[int, Iterable[int]],
    superset_size: int,
    tau: int,
) -> bool:
    """Corollary 2: prune ``candidate`` when it lies in the pruning
    regions of at least ``superset_size - tau + 1`` members of ``S'``.

    Args:
        candidate: the user id under test (``u_k``).
        region_membership: ``u_k -> iterable of user ids u_j whose
            PR(u_j) contains u_k``.
        superset_size: ``|S'|``, the candidate-superset size.
        tau: the requested group size.
    """
    if tau < 1:
        raise InvalidParameterError("tau must be >= 1")
    hostile = region_membership.get(candidate, ())
    return sum(1 for _ in hostile) >= superset_size - tau + 1


# ---------------------------------------------------------------------------
# Social-network distance pruning (Lemma 4)
# ---------------------------------------------------------------------------


def social_distance_prunable(lb_hops: float, tau: int) -> bool:
    """Lemma 4: prune when the hop lower bound reaches ``tau``.

    A connected group of ``tau`` users spans at most ``tau - 1`` hops, so
    a user provably ``>= tau`` hops from ``u_q`` can never join it.
    """
    if tau < 1:
        raise InvalidParameterError("tau must be >= 1")
    return lb_hops >= tau


# ---------------------------------------------------------------------------
# Road-network distance pruning (Lemma 5, Eqs. 5-6)
# ---------------------------------------------------------------------------


def distance_pair_prunable(ub_first: float, lb_second: float) -> bool:
    """Lemma 5: the second pair is prunable when ``ub(S',R') <= lb(S'',R'')``.

    The paper keeps pairs whose bound intervals may still overlap; only a
    strictly dominated pair is discarded, so ties survive.
    """
    return lb_second > ub_first


def ub_maxdist_via_center(
    user_center_dists: Sequence[float],
    center_poi_dists: Sequence[float],
) -> float:
    """Eq. 5: ``max_j dist(u_j, o_i) + max_o dist(o_i, o)``.

    ``o_i`` is the center POI of the candidate region ``R'``; the first
    term ranges over users of ``S'`` and the second over POIs of ``R'``.
    An empty POI list contributes 0 (the region is just the center).
    """
    if not user_center_dists:
        return 0.0
    user_term = max(user_center_dists)
    poi_term = max(center_poi_dists) if center_poi_dists else 0.0
    return user_term + poi_term


def lb_maxdist_via_query_user(query_poi_dists: Sequence[float]) -> float:
    """Eq. 6: ``max_{o in R''} dist(u_q, o)`` (``u_q`` belongs to S'')."""
    if not query_poi_dists:
        return 0.0
    return max(query_poi_dists)


# ---------------------------------------------------------------------------
# Explain rule registry (object level)
# ---------------------------------------------------------------------------

#: Stable rule IDs for the object-level pruning decisions, used by the
#: explain funnel (:mod:`repro.obs.funnel`). Each entry records which
#: paper lemma/equation the rule implements, which Fig. 7 ablation panel
#: isolates it, and the unit of its bound-tightness margin. The margin
#: convention is uniform: *how far past its threshold the failing bound
#: was*, so a recorded margin is always >= 0 and larger means the prune
#: was "easier" (the bound had slack; thresholds could be loosened).
OBJECT_RULES = {
    "obj.poi_matching": {
        "lemma": "Lemma 1 (via Lemma 2)",
        "figure": "Fig. 7c",
        "margin_unit": "theta - ub_match_score",
        "description": "POI superset matching score misses theta",
    },
    "obj.poi_distance": {
        "lemma": "Lemma 5 / Eq. 6",
        "figure": "Fig. 7c",
        "margin_unit": "lb_dist - delta",
        "description": "POI distance lower bound exceeds the best-pair "
        "upper bound delta",
    },
    "obj.poi_witness": {
        "lemma": "Lemma 5 / Eqs. 5-6",
        "figure": "Fig. 7d",
        "margin_unit": "dist(u_q, o) - best_ub",
        "description": "candidate POI dominated by the witness pair's "
        "Eq. 5 upper bound",
    },
    "obj.social_interest": {
        "lemma": "Lemma 3 / Corollary 1",
        "figure": "Fig. 7b",
        "margin_unit": "gamma - interest_score",
        "description": "pairwise interest score with u_q misses gamma",
    },
    "obj.social_hops": {
        "lemma": "Lemma 4",
        "figure": "Fig. 7b",
        "margin_unit": "lb_hops - tau",
        "description": "social hop lower bound reaches tau",
    },
    "refine.social_hops": {
        "lemma": "Lemma 4 (exact hops)",
        "figure": "Fig. 7b",
        "margin_unit": "hops - (tau - 1)",
        "description": "exact BFS hop distance exceeds tau - 1",
    },
    "refine.corollary2": {
        "lemma": "Corollary 2",
        "figure": "Fig. 7a/7b",
        "margin_unit": "hostile_count - threshold",
        "description": "user lies in >= |S'| - tau + 1 pruning regions",
    },
    "refine.seed_matching": {
        "lemma": "Lemma 1 (exact recheck)",
        "figure": "Fig. 7c",
        "margin_unit": "theta - match_score",
        "description": "exact matching score of the seed POI misses theta",
    },
    "pair.distance": {
        "lemma": "Lemma 5 / Eq. 6",
        "figure": "Fig. 7d",
        "margin_unit": "lb_maxdist - kth_best",
        "description": "seed's distance lower bound dominated by the "
        "current top-k worst answer",
    },
    "group.interest": {
        "lemma": "Lemma 3 (pairwise, during enumeration)",
        "figure": "Fig. 7b",
        "margin_unit": "count only",
        "description": "group extension rejected: candidate pairwise-"
        "incompatible with a current member",
    },
}
