"""The Baseline competitor (Section 6.1).

The paper's straightforward baseline: enumerate *all* user sets ``S`` of
size ``tau`` containing the query user that satisfy the interest
threshold, pair each with every candidate POI region, and keep the pair
with the smallest maximum distance — no index, no pruning.

Running this to completion is infeasible at paper scale (Figure 8 quotes
about 1.9e13 days), so, exactly like the paper, :meth:`estimate_cost`
measures the average per-pair cost over up to 100 sampled user sets and
extrapolates by the total candidate-pair count.

On the small networks used in the test suite, :meth:`answer` *does* run
to completion and serves as the ground truth the indexed algorithm is
verified against.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from math import comb
from typing import FrozenSet, List, Optional, Tuple

from ..exceptions import UnknownEntityError
from ..network import SpatialSocialNetwork
from ..obs.registry import Recorder
from .metrics import MetricScorer
from .query import GPSSNAnswer, GPSSNQuery, QueryStatistics
from .refinement import (
    best_region_for_seed,
    enumerate_connected_groups,
    group_distance_maps,
)


@dataclass(frozen=True)
class BaselineCostEstimate:
    """Extrapolated cost of the exhaustive baseline (Figure 8's bars).

    ``estimated_cpu_sec`` and ``estimated_page_accesses`` scale the
    sampled per-pair averages by ``total_pairs``; the sampled values are
    retained for transparency.
    """

    sampled_pairs: int
    sampled_cpu_sec: float
    sampled_page_accesses: int
    total_pairs: float
    estimated_cpu_sec: float
    estimated_page_accesses: float


class BaselineProcessor:
    """Index-free exhaustive GP-SSN evaluation."""

    def __init__(
        self,
        network: SpatialSocialNetwork,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.network = network
        self.recorder = recorder or Recorder()

    # -- exact evaluation (ground truth for tests) ---------------------------

    def answer(
        self,
        query: GPSSNQuery,
        max_groups: Optional[int] = None,
    ) -> Tuple[GPSSNAnswer, QueryStatistics]:
        """Exhaustively evaluate the query (small networks only).

        Enumerates every connected ``tau``-group passing the interest
        threshold and every seed POI, evaluating each pair exactly; no
        pruning beyond the predicates themselves.
        """
        network = self.network
        if not network.social.has_user(query.query_user):
            raise UnknownEntityError(f"unknown query user {query.query_user}")
        stats = QueryStatistics()
        stats.pruning.total_users = network.social.num_users
        stats.pruning.total_pois = network.num_pois
        started = time.perf_counter()

        best_value = math.inf
        best_pair: Optional[Tuple[FrozenSet[int], FrozenSet[int]]] = None
        seeds = network.poi_ids()

        scorer = MetricScorer(query.metric)
        # The baseline's funnel is the contrast case: the group
        # enumeration still rejects incompatible extensions (a
        # predicate, not a pruning shortcut), but every surviving
        # (group, seed) pair is examined — refine.pairs prunes nothing.
        rec = self.recorder
        ex = rec.explain if rec.explain.active else None
        for group in enumerate_connected_groups(
            network, query.query_user, query.tau, query.gamma,
            limit=max_groups, score_fn=scorer.score, explain=ex,
        ):
            stats.groups_refined += 1
            dist_maps = group_distance_maps(network, group)
            interests = [
                network.social.user(uid).interests for uid in group
            ]
            if ex is not None:
                ex.visit("refine.pairs", len(seeds))
                ex.survive("refine.pairs", len(seeds))
            for seed in seeds:
                stats.pruning.candidate_pairs_examined += 1
                region_ids = network.pois_within(seed, query.radius)
                result = best_region_for_seed(
                    network, interests, dist_maps, seed, region_ids, query.theta
                )
                if result is None:
                    continue
                pois, value = result
                if value < best_value or (
                    value == best_value
                    and best_pair is not None
                    and (sorted(group), sorted(pois)) < (sorted(best_pair[0]), sorted(best_pair[1]))
                ):
                    best_value = value
                    best_pair = (group, pois)

        stats.cpu_time_sec = time.perf_counter() - started
        m = network.social.num_users
        n = network.num_pois
        stats.pruning.total_possible_pairs = float(
            comb(max(m - 1, 0), min(query.tau - 1, max(m - 1, 0))) * n
        )
        # The baseline scans users and POIs sequentially: charge one page
        # per 32 objects touched per group evaluated (a generous page of
        # packed records), so I/O scales with work done, as in the paper.
        objects_touched = stats.groups_refined * (query.tau + n)
        stats.page_accesses = math.ceil(objects_touched / 32)
        rec.record_query(stats)
        if best_pair is None:
            return GPSSNAnswer.empty(), stats
        return (
            GPSSNAnswer(
                users=best_pair[0], pois=best_pair[1], max_distance=best_value
            ),
            stats,
        )

    def answer_topk(
        self,
        query: GPSSNQuery,
        k: int,
        max_groups: Optional[int] = None,
    ) -> Tuple[List[GPSSNAnswer], QueryStatistics]:
        """Exhaustive top-k: the ``k`` best distinct ``(S, R)`` pairs.

        Ground truth for :meth:`GPSSNQueryProcessor.answer_topk` on
        small networks; no pruning beyond the predicates.
        """
        from ..exceptions import InvalidParameterError

        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        network = self.network
        if not network.social.has_user(query.query_user):
            raise UnknownEntityError(f"unknown query user {query.query_user}")
        stats = QueryStatistics()
        stats.pruning.total_users = network.social.num_users
        stats.pruning.total_pois = network.num_pois
        started = time.perf_counter()

        best: List[Tuple[float, FrozenSet[int], FrozenSet[int]]] = []
        seen: set = set()
        seeds = network.poi_ids()
        scorer = MetricScorer(query.metric)
        rec = self.recorder
        ex = rec.explain if rec.explain.active else None
        for group in enumerate_connected_groups(
            network, query.query_user, query.tau, query.gamma,
            limit=max_groups, score_fn=scorer.score, explain=ex,
        ):
            stats.groups_refined += 1
            dist_maps = group_distance_maps(network, group)
            interests = [network.social.user(uid).interests for uid in group]
            if ex is not None:
                ex.visit("refine.pairs", len(seeds))
                ex.survive("refine.pairs", len(seeds))
            for seed in seeds:
                stats.pruning.candidate_pairs_examined += 1
                region_ids = network.pois_within(seed, query.radius)
                result = best_region_for_seed(
                    network, interests, dist_maps, seed, region_ids, query.theta
                )
                if result is None:
                    continue
                pois, value = result
                key = (group, pois)
                if key in seen:
                    continue
                seen.add(key)
                best.append((value, group, pois))
        best.sort(key=lambda item: (item[0], sorted(item[1]), sorted(item[2])))
        best = best[:k]

        stats.cpu_time_sec = time.perf_counter() - started
        m = network.social.num_users
        n = network.num_pois
        stats.pruning.total_possible_pairs = float(
            comb(max(m - 1, 0), min(query.tau - 1, max(m - 1, 0))) * n
        )
        objects_touched = stats.groups_refined * (query.tau + n)
        stats.page_accesses = math.ceil(objects_touched / 32)
        rec.record_query(stats)
        answers = [
            GPSSNAnswer(users=users, pois=pois, max_distance=value)
            for value, users, pois in best
        ]
        return answers, stats

    # -- sampled extrapolation (Figure 8's method) -----------------------------

    def estimate_cost(
        self, query: GPSSNQuery, num_samples: int = 100
    ) -> BaselineCostEstimate:
        """Estimate the exhaustive cost by sampling (the paper's method).

        Takes up to ``num_samples`` sample groups, measures the average
        CPU time and page accesses to evaluate one (S, R) pair, and
        multiplies by the total number of candidate pairs
        ``C(m-1, tau-1) * n``.
        """
        network = self.network
        m = network.social.num_users
        n = network.num_pois
        total_pairs = float(
            comb(max(m - 1, 0), min(query.tau - 1, max(m - 1, 0))) * n
        )

        sampled_pairs = 0
        started = time.perf_counter()
        scorer = MetricScorer(query.metric)
        groups = enumerate_connected_groups(
            network, query.query_user, query.tau, query.gamma,
            limit=max(1, num_samples), score_fn=scorer.score,
        )
        seeds = network.poi_ids()
        for group in groups:
            dist_maps = group_distance_maps(network, group)
            interests = [network.social.user(uid).interests for uid in group]
            seed = seeds[sampled_pairs % len(seeds)]
            region_ids = network.pois_within(seed, query.radius)
            best_region_for_seed(
                network, interests, dist_maps, seed, region_ids, query.theta
            )
            sampled_pairs += 1
        sampled_cpu = time.perf_counter() - started
        if sampled_pairs == 0:
            # No eligible group at all: charge one pair's worth of scan.
            sampled_pairs = 1
            sampled_cpu = max(sampled_cpu, 1e-6)
        sampled_pages = math.ceil(sampled_pairs * (query.tau + n) / 32)

        per_pair_cpu = sampled_cpu / sampled_pairs
        per_pair_pages = sampled_pages / sampled_pairs
        return BaselineCostEstimate(
            sampled_pairs=sampled_pairs,
            sampled_cpu_sec=sampled_cpu,
            sampled_page_accesses=sampled_pages,
            total_pairs=total_pairs,
            estimated_cpu_sec=per_pair_cpu * total_pairs,
            estimated_page_accesses=per_pair_pages * total_pairs,
        )
