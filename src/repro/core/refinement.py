"""Candidate refinement: group enumeration and POI-region construction.

The index traversal of Algorithm 2 ends with candidate users ``S_cand``
and candidate POIs ``R_cand``; this module turns them into the final
``(S, R)`` answer:

* :func:`enumerate_connected_groups` — all connected ``tau``-subsets of
  the candidate users that contain the query user and satisfy the
  pairwise interest threshold ``gamma`` (the refinement of Section 5);
* :func:`best_region_for_seed` — for a group ``S`` and a seed POI
  ``o_i``, the subset of ``ball(o_i, r)`` minimizing
  ``maxdist_RN(S, R)`` subject to the matching threshold.

Canonical candidate-region space
--------------------------------
Definition 5 constrains ``R`` by *pairwise* road distance ``<= 2r``. As
in the paper (Section 3.1), we materialize candidate regions as balls of
radius ``r`` centered at POIs: ``R ⊆ ball(o_i, r)`` with ``o_i ∈ R``.
Any such set is pairwise-feasible by the triangle inequality, and every
ball of radius ``r`` around an arbitrary center that contains some POI
``o_i`` is covered by ``ball(o_i, 2r) ⊇ ball(center, r)`` — the paper's
superset argument. Both the indexed algorithm and the exhaustive
baseline search exactly this space, so their answers are comparable.

Within a seed's ball the optimal subset is found *exactly*: matching
scores are monotone in ``R`` (Lemma 2) and the objective is the max of
per-POI distances, so the optimum is the shortest feasible prefix of
POIs ordered by ``max_{u in S} dist_RN(u, o)``.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..exceptions import UnknownEntityError
from ..network import SpatialSocialNetwork
from ..roadnet.shortest_path import PositionArrays, position_distance_from_map
from .scores import interest_score, match_score


def enumerate_connected_groups(
    network: SpatialSocialNetwork,
    query_user: int,
    tau: int,
    gamma: float,
    allowed: Optional[Set[int]] = None,
    limit: Optional[int] = None,
    score_fn=None,
    explain=None,
) -> Iterator[FrozenSet[int]]:
    """Yield connected ``tau``-groups containing ``query_user``.

    Groups satisfy all three social predicates of Definition 5: they
    contain the issuer, they induce a connected subgraph of ``G_s``, and
    every *pair* of members has ``Interest_Score >= gamma`` (checked
    incrementally, so incompatible branches die early).

    Args:
        network: the spatial-social network.
        query_user: the issuer ``u_q``.
        tau: group size.
        gamma: pairwise interest threshold.
        allowed: optional candidate-user whitelist (``S_cand``); the
            issuer is always treated as allowed.
        limit: optional cap on the number of yielded groups.
        score_fn: pairwise interest score; defaults to the paper's dot
            product (Eq. 1). Pass a :class:`~repro.core.metrics.MetricScorer`
            bound method for the alternative metrics.
        explain: optional :class:`~repro.obs.funnel.ExplainRecorder`
            (pass ``None``, not a NullExplain, to keep the loop free of
            hook calls). Each frontier-extension decision lands in the
            ``refine.groups`` funnel: visited per candidate considered,
            pruned under ``group.interest`` when pairwise-incompatible,
            survived when the extension is taken.

    Yields:
        ``frozenset`` groups of exactly ``tau`` user ids.
    """
    social = network.social
    if not social.has_user(query_user):
        raise UnknownEntityError(f"unknown query user {query_user}")
    if score_fn is None:
        score_fn = interest_score

    if tau == 1:
        yield frozenset((query_user,))
        return

    def permitted(uid: int) -> bool:
        return allowed is None or uid in allowed or uid == query_user

    interests = {query_user: social.user(query_user).interests}

    def compatible(uid: int, group: Tuple[int, ...]) -> bool:
        if uid not in interests:
            interests[uid] = social.user(uid).interests
        w = interests[uid]
        return all(
            score_fn(w, interests[member]) >= gamma for member in group
        )

    # Connected-subgraph enumeration with a canonical extension order:
    # each group is generated once by only ever adding neighbours whose
    # id is allowed to extend the current frontier set ("extension set"
    # technique). `banned` carries vertices already considered at an
    # ancestor, preventing duplicates.
    yielded = 0

    def extend(
        group: Tuple[int, ...],
        frontier: List[int],
        banned: Set[int],
    ) -> Iterator[FrozenSet[int]]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if len(group) == tau:
            yielded += 1
            yield frozenset(group)
            return
        local_banned = set(banned)
        for idx, candidate in enumerate(frontier):
            if limit is not None and yielded >= limit:
                return
            if explain is not None:
                explain.visit("refine.groups")
            if not compatible(candidate, group):
                # A pairwise-incompatible candidate stays incompatible in
                # every supergroup: ban it for deeper levels of this branch.
                local_banned.add(candidate)
                if explain is not None:
                    explain.prune("refine.groups", "group.interest")
                continue
            if explain is not None:
                explain.survive("refine.groups")
            new_group = group + (candidate,)
            new_banned = local_banned | {candidate}
            new_frontier = [c for c in frontier[idx + 1:] if c not in new_banned]
            # Sorted neighbour order keeps enumeration content-deterministic:
            # set iteration order depends on insertion/deletion history, which
            # differs between a freshly loaded network and one mutated in
            # place, and a `limit` cap makes the yielded set order-sensitive.
            for nbr in sorted(social.friends(candidate)):
                if (
                    nbr not in new_banned
                    and nbr not in new_group
                    and permitted(nbr)
                    and nbr not in new_frontier
                ):
                    new_frontier.append(nbr)
            yield from extend(new_group, new_frontier, new_banned)
            local_banned.add(candidate)

    initial_frontier = [
        nbr for nbr in sorted(social.friends(query_user)) if permitted(nbr)
    ]
    yield from extend((query_user,), initial_frontier, {query_user})


def group_distance_maps(
    network: SpatialSocialNetwork, group: Iterable[int]
) -> Dict[int, Dict[int, float]]:
    """One Dijkstra vertex-distance map per group member (oracle-cached)."""
    maps = {}
    for uid in group:
        user = network.social.user(uid)
        maps[uid] = network.distances.distances_from(("user", uid), user.home)
    return maps


def max_group_distance_to_poi(
    network: SpatialSocialNetwork,
    dist_maps: Dict[int, Dict[int, float]],
    poi_id: int,
) -> float:
    """``max_{u in S} dist_RN(u, o_i)`` from pre-built distance maps."""
    poi = network.poi(poi_id)
    return max(
        position_distance_from_map(
            network.road, dist_map, poi.position,
            network.social.user(uid).home,
        )
        for uid, dist_map in dist_maps.items()
    )


def best_region_for_seed(
    network: SpatialSocialNetwork,
    group_interests: Sequence[np.ndarray],
    dist_maps: Dict[int, Dict[int, float]],
    seed_poi: int,
    region_poi_ids: Sequence[int],
    theta: float,
) -> Optional[Tuple[FrozenSet[int], float]]:
    """The optimal feasible region for one (group, seed) pair.

    Args:
        network: the spatial-social network.
        group_interests: interest vectors of the group's members.
        dist_maps: per-member Dijkstra maps (:func:`group_distance_maps`).
        seed_poi: the center POI ``o_i`` (always included in ``R``).
        region_poi_ids: POIs within road distance ``r`` of the seed
            (must include the seed itself).
        theta: the matching threshold.

    Returns:
        ``(R, maxdist_RN(S, R))`` for the feasible subset minimizing the
        max distance, or ``None`` when even the full ball fails the
        matching threshold for some member. ``R`` is the *minimal*
        feasible prefix: a scanned POI joins it only when it covers at
        least one fresh topic (a coverage-redundant POI can never change
        any member's score, and the deciding POI — the one that flips
        the last member over ``theta`` — always contributes, so dropping
        redundant POIs leaves the max distance unchanged).
    """
    # Distance of every region POI to the group.
    dmax = {
        pid: max_group_distance_to_poi(network, dist_maps, pid)
        for pid in region_poi_ids
    }
    if seed_poi not in dmax:
        dmax[seed_poi] = max_group_distance_to_poi(network, dist_maps, seed_poi)

    ordered = sorted(dmax, key=dmax.get)
    covered: Set[int] = set(network.poi(seed_poi).keywords)
    chosen: Set[int] = {seed_poi}

    # Incremental matching: track each member's current score and bump
    # it only for newly covered topics, so the scan costs O(new topics)
    # per added POI instead of re-scoring every member from scratch.
    scores = [match_score(w, covered) for w in group_interests]
    unmatched = sum(1 for s in scores if s < theta)
    if unmatched == 0:
        return frozenset(chosen), dmax[seed_poi]
    for pid in ordered:
        if pid in chosen:
            continue
        fresh = network.poi(pid).keywords - covered
        if not fresh:
            continue
        chosen.add(pid)
        covered |= fresh
        for idx, w in enumerate(group_interests):
            gained = sum(float(w[f]) for f in fresh)
            if scores[idx] < theta and scores[idx] + gained >= theta:
                unmatched -= 1
            scores[idx] += gained
        if unmatched == 0:
            max_distance = max(dmax[p] for p in chosen)
            return frozenset(chosen), max_distance
    return None


def exact_maxdist(
    network: SpatialSocialNetwork,
    group: Iterable[int],
    pois: Iterable[int],
) -> float:
    """``maxdist_RN(S, R)`` evaluated exactly (Definition 5)."""
    dist_maps = group_distance_maps(network, group)
    pois = list(pois)
    if not pois:
        return 0.0
    return max(
        max_group_distance_to_poi(network, dist_maps, pid) for pid in pois
    )


class BallArrays:
    """Array image of one candidate ball ``⊙(o_seed, r)``.

    Holds the ball's POIs (deduplicated, seed guaranteed present — the
    same normalization the scalar ``dmax`` dict applies through key
    insertion) as indices into the kernel's POI-order arrays, plus a
    boolean keyword matrix view and the OR of all its rows (the full
    ball's coverage, for the infeasibility gate).
    """

    __slots__ = (
        "seed_poi", "poi_ids", "dense_idx", "seed_local", "seed_dense",
        "keywords", "full_cover_f8",
    )

    def __init__(
        self,
        kernel: "PairKernel",
        seed_poi: int,
        region_poi_ids: Sequence[int],
    ) -> None:
        # First-occurrence dedup in region order, seed appended when
        # absent: exactly the key order of the scalar dmax dict, which
        # the stable distance sort below depends on for tie-breaking.
        ids: List[int] = []
        seen: Set[int] = set()
        for pid in region_poi_ids:
            if pid not in seen:
                seen.add(pid)
                ids.append(pid)
        if seed_poi not in seen:
            ids.append(seed_poi)
        self.seed_poi = seed_poi
        self.poi_ids = ids
        poi_index = kernel.poi_index
        self.dense_idx = np.fromiter(
            (poi_index[pid] for pid in ids), dtype=np.int64, count=len(ids)
        )
        self.seed_local = ids.index(seed_poi)
        self.seed_dense = poi_index[seed_poi]
        self.keywords = kernel.keywords[self.dense_idx]
        self.full_cover_f8 = (
            self.keywords.any(axis=0).astype(np.float64)
        )


class GroupState:
    """Per-(group, query) arrays shared across every seed evaluation.

    Computed once per enumerated group and reused for all of its
    (group, seed) pairs in the top-k loop:

    * ``gmax`` — ``max_{u in S} dist_RN(u, o)`` for *every* POI (the
      batched form of :func:`max_group_distance_to_poi`), a max-reduce
      over the kernel's cached per-member distance rows;
    * ``seed_feasible`` — for every POI, whether the seed *alone*
      theta-matches every member (one matmul over the POI×topic matrix);
      such pairs resolve in O(1) without any prefix scan.
    """

    __slots__ = ("frozen", "interests", "gmax", "seed_feasible", "theta")

    def __init__(
        self,
        kernel: "PairKernel",
        group: Iterable[int],
        theta: float,
    ) -> None:
        members = sorted(group)
        self.frozen = frozenset(members)
        self.theta = theta
        self.interests = np.stack(
            [kernel.interest_vector(uid) for uid in members]
        )
        rows = [kernel.member_row(uid) for uid in members]
        self.gmax = rows[0] if len(rows) == 1 else np.maximum.reduce(rows)
        # Seed-only matching: the seed theta-matches the whole group iff
        # it theta-matches every member — an AND over per-member POI
        # feasibility arrays cached once per (user, theta) at the kernel
        # (``min over members >= theta`` restated exactly).
        feas = kernel.user_poi_feasible(members[0], theta)
        for uid in members[1:]:
            feas = feas & kernel.user_poi_feasible(uid, theta)
        self.seed_feasible = feas


class PairKernel:
    """Vectorized evaluation of (group, seed) pairs (Lemma 5 / Eqs. 5-6).

    The scalar refinement path costs one ``position_distance_from_map``
    call per (member, POI) pair and a Python keyword scan per (group,
    seed). This kernel restructures the work around dense arrays:

    * one cached float64 distance row per *member* covering **all**
      POIs (a gather over the member's dense SSSP vector from
      :meth:`~repro.roadnet.shortest_path.DistanceOracle.dense_distances_from`);
    * one max-reduce per *group* (:class:`GroupState`);
    * per (group, seed) pair only O(1) gates plus — when the seed alone
      is not enough — a stable argsort of the ball's gathered distances
      and a cumulative-coverage matmul for the feasible-prefix scan.

    Outcomes are identical to :func:`best_region_for_seed` (post
    minimal-prefix fix): the distance values are bitwise-equal IEEE
    expressions and the prefix order uses the same stable tie-breaking.
    The scalar path remains in place as the correctness reference
    (``refinement_kernel="scalar"`` on the query processor).
    """

    def __init__(self, network: SpatialSocialNetwork) -> None:
        self.network = network
        self.version = network.version
        self.indexer = network.distances.vertex_indexer()
        self.poi_ids: List[int] = network.poi_ids()
        self.poi_index: Dict[int, int] = {
            pid: i for i, pid in enumerate(self.poi_ids)
        }
        pois = [network.poi(pid) for pid in self.poi_ids]
        self.positions = PositionArrays(
            network.road, self.indexer, [p.position for p in pois]
        )
        d = network.num_keywords
        keywords = np.zeros((len(pois), d), dtype=bool)
        for i, poi in enumerate(pois):
            for f in poi.keywords:
                keywords[i, f] = True
        self.keywords = keywords
        self.keywords_f8 = keywords.astype(np.float64)
        # Per-member distance rows, LRU-capped with the same budget as
        # the oracle's map cache (a row is ~n_poi floats, far smaller
        # than the SSSP map it derives from).
        self._member_rows: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._member_rows_cap = network.distances.cache_size
        self._balls: Dict[Hashable, BallArrays] = {}
        self._user_positions: Optional[PositionArrays] = None
        self._user_index: Optional[Dict[int, int]] = None
        self._interest_vectors: Dict[int, np.ndarray] = {}
        self._user_feasible: Dict[Tuple[int, float], np.ndarray] = {}

    # -- cached per-entity arrays -------------------------------------

    def member_row(self, uid: int) -> np.ndarray:
        """``dist_RN(u, o)`` for every POI ``o``, cached per user.

        Bitwise-identical to per-POI ``position_distance_from_map``
        calls over the user's oracle map (same gather + IEEE min, same
        same-edge correction), evaluated once for all POIs.
        """
        rows = self._member_rows
        row = rows.get(uid)
        if row is None:
            network = self.network
            user = network.social.user(uid)
            dense = network.distances.dense_distances_from(
                ("user", uid), user.home
            )
            row = self.positions.distances_from_dense(
                network.road, dense, user.home
            )
            row.flags.writeable = False
            rows[uid] = row
            if len(rows) > self._member_rows_cap:
                rows.popitem(last=False)
        else:
            rows.move_to_end(uid)
        return row

    def interest_vector(self, uid: int) -> np.ndarray:
        """The user's interest weights as a cached float64 array."""
        vec = self._interest_vectors.get(uid)
        if vec is None:
            vec = np.asarray(
                self.network.social.user(uid).interests, dtype=np.float64
            )
            vec.flags.writeable = False
            self._interest_vectors[uid] = vec
        return vec

    def user_poi_feasible(self, uid: int, theta: float) -> np.ndarray:
        """Per-POI bool: does ``o``'s own keyword set theta-match ``uid``?

        One matvec over the POI×topic matrix, cached per (user, theta);
        group-level seed feasibility is the AND of its members' arrays.
        """
        key = (uid, theta)
        arr = self._user_feasible.get(key)
        if arr is None:
            arr = (self.keywords_f8 @ self.interest_vector(uid)) >= theta
            arr.flags.writeable = False
            self._user_feasible[key] = arr
        return arr

    def user_positions(self) -> Tuple[PositionArrays, Dict[int, int]]:
        """Array image of every user's home position (built lazily)."""
        if self._user_positions is None:
            social = self.network.social
            uids = list(social.user_ids())
            self._user_index = {uid: i for i, uid in enumerate(uids)}
            self._user_positions = PositionArrays(
                self.network.road, self.indexer,
                [social.user(uid).home for uid in uids],
            )
        return self._user_positions, self._user_index

    def ball(
        self,
        seed_poi: int,
        region_poi_ids: Sequence[int],
        cache_key: Optional[Hashable] = None,
    ) -> BallArrays:
        """Ball arrays for a seed's region, cached under ``cache_key``."""
        if cache_key is not None:
            cached = self._balls.get(cache_key)
            if cached is not None:
                return cached
        arrays = BallArrays(self, seed_poi, region_poi_ids)
        if cache_key is not None:
            self._balls[cache_key] = arrays
        return arrays

    def group_state(
        self, group: Iterable[int], theta: float
    ) -> GroupState:
        return GroupState(self, group, theta)

    # -- the (group, seed) evaluation ---------------------------------

    def best_region(
        self,
        ball: BallArrays,
        state: GroupState,
        skip_gates: bool = False,
    ) -> Optional[Tuple[FrozenSet[int], float]]:
        """Vectorized :func:`best_region_for_seed` for one pair.

        Three exits, cheapest first: the seed alone already satisfies
        every member (O(1) lookup into the group's precomputed gate);
        the full ball cannot satisfy some member (one matvec); otherwise
        the exact minimal feasible prefix via stable argsort +
        cumulative coverage. The refinement loop batch-evaluates the
        first two gates for a whole seed array per group and passes
        ``skip_gates=True`` so only the prefix scan runs here.
        """
        theta = state.theta
        if not skip_gates:
            if state.seed_feasible[ball.seed_dense]:
                return (
                    frozenset((ball.seed_poi,)),
                    float(state.gmax[ball.seed_dense]),
                )
            # Full-ball gate: the scan below can only cover what the
            # whole ball covers; if that fails a member, no prefix can
            # succeed.
            full_scores = state.interests @ ball.full_cover_f8
            if full_scores.min() < theta:
                return None
        dmax = state.gmax[ball.dense_idx]
        order = np.argsort(dmax, kind="stable")
        kw_ordered = ball.keywords[order]
        seed_row = self.keywords[ball.seed_dense]
        cum = np.logical_or.accumulate(kw_ordered, axis=0)
        cum |= seed_row
        scores = cum.astype(np.float64) @ state.interests.T
        feasible = scores.min(axis=1) >= theta
        if not feasible.any():
            # Unreachable when the gate and the scan agree exactly;
            # kept as a defensive consistent answer (ball infeasible).
            return None
        cut = int(np.argmax(feasible))
        # A scanned POI joins R only when it contributes fresh topics
        # relative to the coverage before it (seed topics included) —
        # the minimal-prefix rule of the scalar reference.
        prev = np.empty_like(cum[: cut + 1])
        prev[0] = seed_row
        if cut:
            prev[1:] = cum[:cut]  # rows already include the seed topics
        contributed = (kw_ordered[: cut + 1] & ~prev).any(axis=1)
        chosen_local = order[: cut + 1][contributed]
        poi_ids = ball.poi_ids
        chosen = frozenset(poi_ids[i] for i in chosen_local) | {ball.seed_poi}
        value = float(dmax[ball.seed_local])
        if chosen_local.size:
            value = max(value, float(dmax[chosen_local].max()))
        return chosen, value


def sample_connected_groups(
    network: SpatialSocialNetwork,
    query_user: int,
    tau: int,
    gamma: float,
    rng,
    num_samples: int,
    allowed: Optional[Set[int]] = None,
    score_fn=None,
    max_attempts_factor: int = 25,
) -> List[FrozenSet[int]]:
    """Random connected expansions from the query vertex.

    The paper's future-work refinement strategy: "apply subset sampling
    by randomly expanding the subgraph starting from the query vertex
    u_q". Each attempt grows a group greedily — start at ``u_q``, keep a
    frontier of neighbouring candidates, and repeatedly absorb a random
    frontier member that is pairwise-compatible (score >= gamma) with
    everyone already in the group — until the group reaches ``tau`` or
    the frontier runs dry.

    Args:
        network: the spatial-social network.
        query_user: the issuer ``u_q``.
        tau: group size.
        gamma: pairwise interest threshold.
        rng: a ``numpy.random.Generator``.
        num_samples: number of *distinct* groups to aim for.
        allowed: optional candidate whitelist (``S_cand``).
        score_fn: pairwise score (defaults to Eq. 1's dot product).
        max_attempts_factor: give up after
            ``max_attempts_factor * num_samples`` *failed* expansions —
            dead ends (the frontier dried up below ``tau``) and
            duplicates of already-found groups. Successful expansions
            that discover a new group never count against the budget, so
            dense neighbourhoods are not silently under-sampled.

    Returns:
        Up to ``num_samples`` distinct valid groups (fewer when the
        neighbourhood is too sparse). Deterministic for a given ``rng``
        state.
    """
    social = network.social
    if not social.has_user(query_user):
        raise UnknownEntityError(f"unknown query user {query_user}")
    if score_fn is None:
        score_fn = interest_score
    if tau == 1:
        return [frozenset((query_user,))]

    def permitted(uid: int) -> bool:
        return allowed is None or uid in allowed or uid == query_user

    interests: Dict[int, np.ndarray] = {}

    def vector(uid: int) -> np.ndarray:
        if uid not in interests:
            interests[uid] = social.user(uid).interests
        return interests[uid]

    found: Set[FrozenSet[int]] = set()
    failed_attempts = 0
    max_attempts = max_attempts_factor * max(num_samples, 1)
    while len(found) < num_samples and failed_attempts < max_attempts:
        group = [query_user]
        member_set = {query_user}
        frontier = [
            nbr for nbr in sorted(social.friends(query_user)) if permitted(nbr)
        ]
        while len(group) < tau and frontier:
            idx = int(rng.integers(len(frontier)))
            candidate = frontier.pop(idx)
            if candidate in member_set:
                continue
            if any(
                score_fn(vector(candidate), vector(member)) < gamma
                for member in group
            ):
                continue
            group.append(candidate)
            member_set.add(candidate)
            for nbr in sorted(social.friends(candidate)):
                if nbr not in member_set and permitted(nbr):
                    frontier.append(nbr)
        if len(group) == tau:
            candidate_group = frozenset(group)
            if candidate_group in found:
                failed_attempts += 1  # duplicate: no progress made
            else:
                found.add(candidate_group)
        else:
            failed_attempts += 1  # dead end: frontier dried up below tau
    return sorted(found, key=sorted)
