"""Candidate refinement: group enumeration and POI-region construction.

The index traversal of Algorithm 2 ends with candidate users ``S_cand``
and candidate POIs ``R_cand``; this module turns them into the final
``(S, R)`` answer:

* :func:`enumerate_connected_groups` — all connected ``tau``-subsets of
  the candidate users that contain the query user and satisfy the
  pairwise interest threshold ``gamma`` (the refinement of Section 5);
* :func:`best_region_for_seed` — for a group ``S`` and a seed POI
  ``o_i``, the subset of ``ball(o_i, r)`` minimizing
  ``maxdist_RN(S, R)`` subject to the matching threshold.

Canonical candidate-region space
--------------------------------
Definition 5 constrains ``R`` by *pairwise* road distance ``<= 2r``. As
in the paper (Section 3.1), we materialize candidate regions as balls of
radius ``r`` centered at POIs: ``R ⊆ ball(o_i, r)`` with ``o_i ∈ R``.
Any such set is pairwise-feasible by the triangle inequality, and every
ball of radius ``r`` around an arbitrary center that contains some POI
``o_i`` is covered by ``ball(o_i, 2r) ⊇ ball(center, r)`` — the paper's
superset argument. Both the indexed algorithm and the exhaustive
baseline search exactly this space, so their answers are comparable.

Within a seed's ball the optimal subset is found *exactly*: matching
scores are monotone in ``R`` (Lemma 2) and the objective is the max of
per-POI distances, so the optimum is the shortest feasible prefix of
POIs ordered by ``max_{u in S} dist_RN(u, o)``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..exceptions import UnknownEntityError
from ..network import SpatialSocialNetwork
from ..roadnet.shortest_path import position_distance_from_map
from .scores import interest_score, match_score


def enumerate_connected_groups(
    network: SpatialSocialNetwork,
    query_user: int,
    tau: int,
    gamma: float,
    allowed: Optional[Set[int]] = None,
    limit: Optional[int] = None,
    score_fn=None,
    explain=None,
) -> Iterator[FrozenSet[int]]:
    """Yield connected ``tau``-groups containing ``query_user``.

    Groups satisfy all three social predicates of Definition 5: they
    contain the issuer, they induce a connected subgraph of ``G_s``, and
    every *pair* of members has ``Interest_Score >= gamma`` (checked
    incrementally, so incompatible branches die early).

    Args:
        network: the spatial-social network.
        query_user: the issuer ``u_q``.
        tau: group size.
        gamma: pairwise interest threshold.
        allowed: optional candidate-user whitelist (``S_cand``); the
            issuer is always treated as allowed.
        limit: optional cap on the number of yielded groups.
        score_fn: pairwise interest score; defaults to the paper's dot
            product (Eq. 1). Pass a :class:`~repro.core.metrics.MetricScorer`
            bound method for the alternative metrics.
        explain: optional :class:`~repro.obs.funnel.ExplainRecorder`
            (pass ``None``, not a NullExplain, to keep the loop free of
            hook calls). Each frontier-extension decision lands in the
            ``refine.groups`` funnel: visited per candidate considered,
            pruned under ``group.interest`` when pairwise-incompatible,
            survived when the extension is taken.

    Yields:
        ``frozenset`` groups of exactly ``tau`` user ids.
    """
    social = network.social
    if not social.has_user(query_user):
        raise UnknownEntityError(f"unknown query user {query_user}")
    if score_fn is None:
        score_fn = interest_score

    if tau == 1:
        yield frozenset((query_user,))
        return

    def permitted(uid: int) -> bool:
        return allowed is None or uid in allowed or uid == query_user

    interests = {query_user: social.user(query_user).interests}

    def compatible(uid: int, group: Tuple[int, ...]) -> bool:
        if uid not in interests:
            interests[uid] = social.user(uid).interests
        w = interests[uid]
        return all(
            score_fn(w, interests[member]) >= gamma for member in group
        )

    # Connected-subgraph enumeration with a canonical extension order:
    # each group is generated once by only ever adding neighbours whose
    # id is allowed to extend the current frontier set ("extension set"
    # technique). `banned` carries vertices already considered at an
    # ancestor, preventing duplicates.
    yielded = 0

    def extend(
        group: Tuple[int, ...],
        frontier: List[int],
        banned: Set[int],
    ) -> Iterator[FrozenSet[int]]:
        nonlocal yielded
        if limit is not None and yielded >= limit:
            return
        if len(group) == tau:
            yielded += 1
            yield frozenset(group)
            return
        local_banned = set(banned)
        for idx, candidate in enumerate(frontier):
            if limit is not None and yielded >= limit:
                return
            if explain is not None:
                explain.visit("refine.groups")
            if not compatible(candidate, group):
                # A pairwise-incompatible candidate stays incompatible in
                # every supergroup: ban it for deeper levels of this branch.
                local_banned.add(candidate)
                if explain is not None:
                    explain.prune("refine.groups", "group.interest")
                continue
            if explain is not None:
                explain.survive("refine.groups")
            new_group = group + (candidate,)
            new_banned = local_banned | {candidate}
            new_frontier = [c for c in frontier[idx + 1:] if c not in new_banned]
            for nbr in social.friends(candidate):
                if (
                    nbr not in new_banned
                    and nbr not in new_group
                    and permitted(nbr)
                    and nbr not in new_frontier
                ):
                    new_frontier.append(nbr)
            yield from extend(new_group, new_frontier, new_banned)
            local_banned.add(candidate)

    initial_frontier = [
        nbr for nbr in sorted(social.friends(query_user)) if permitted(nbr)
    ]
    yield from extend((query_user,), initial_frontier, {query_user})


def group_distance_maps(
    network: SpatialSocialNetwork, group: Iterable[int]
) -> Dict[int, Dict[int, float]]:
    """One Dijkstra vertex-distance map per group member (oracle-cached)."""
    maps = {}
    for uid in group:
        user = network.social.user(uid)
        maps[uid] = network.distances.distances_from(("user", uid), user.home)
    return maps


def max_group_distance_to_poi(
    network: SpatialSocialNetwork,
    dist_maps: Dict[int, Dict[int, float]],
    poi_id: int,
) -> float:
    """``max_{u in S} dist_RN(u, o_i)`` from pre-built distance maps."""
    poi = network.poi(poi_id)
    return max(
        position_distance_from_map(
            network.road, dist_map, poi.position,
            network.social.user(uid).home,
        )
        for uid, dist_map in dist_maps.items()
    )


def best_region_for_seed(
    network: SpatialSocialNetwork,
    group_interests: Sequence[np.ndarray],
    dist_maps: Dict[int, Dict[int, float]],
    seed_poi: int,
    region_poi_ids: Sequence[int],
    theta: float,
) -> Optional[Tuple[FrozenSet[int], float]]:
    """The optimal feasible region for one (group, seed) pair.

    Args:
        network: the spatial-social network.
        group_interests: interest vectors of the group's members.
        dist_maps: per-member Dijkstra maps (:func:`group_distance_maps`).
        seed_poi: the center POI ``o_i`` (always included in ``R``).
        region_poi_ids: POIs within road distance ``r`` of the seed
            (must include the seed itself).
        theta: the matching threshold.

    Returns:
        ``(R, maxdist_RN(S, R))`` for the feasible subset minimizing the
        max distance, or ``None`` when even the full ball fails the
        matching threshold for some member.
    """
    # Distance of every region POI to the group.
    dmax = {
        pid: max_group_distance_to_poi(network, dist_maps, pid)
        for pid in region_poi_ids
    }
    if seed_poi not in dmax:
        dmax[seed_poi] = max_group_distance_to_poi(network, dist_maps, seed_poi)

    ordered = sorted(dmax, key=dmax.get)
    covered: Set[int] = set(network.poi(seed_poi).keywords)
    chosen: Set[int] = {seed_poi}

    # Incremental matching: track each member's current score and bump
    # it only for newly covered topics, so the scan costs O(new topics)
    # per added POI instead of re-scoring every member from scratch.
    scores = [match_score(w, covered) for w in group_interests]
    unmatched = sum(1 for s in scores if s < theta)
    if unmatched == 0:
        return frozenset(chosen), dmax[seed_poi]
    for pid in ordered:
        if pid in chosen:
            continue
        chosen.add(pid)
        fresh = network.poi(pid).keywords - covered
        if not fresh:
            continue
        covered |= fresh
        for idx, w in enumerate(group_interests):
            gained = sum(float(w[f]) for f in fresh)
            if scores[idx] < theta and scores[idx] + gained >= theta:
                unmatched -= 1
            scores[idx] += gained
        if unmatched == 0:
            max_distance = max(dmax[p] for p in chosen)
            return frozenset(chosen), max_distance
    return None


def exact_maxdist(
    network: SpatialSocialNetwork,
    group: Iterable[int],
    pois: Iterable[int],
) -> float:
    """``maxdist_RN(S, R)`` evaluated exactly (Definition 5)."""
    dist_maps = group_distance_maps(network, group)
    pois = list(pois)
    if not pois:
        return 0.0
    return max(
        max_group_distance_to_poi(network, dist_maps, pid) for pid in pois
    )


def sample_connected_groups(
    network: SpatialSocialNetwork,
    query_user: int,
    tau: int,
    gamma: float,
    rng,
    num_samples: int,
    allowed: Optional[Set[int]] = None,
    score_fn=None,
    max_attempts_factor: int = 25,
) -> List[FrozenSet[int]]:
    """Random connected expansions from the query vertex.

    The paper's future-work refinement strategy: "apply subset sampling
    by randomly expanding the subgraph starting from the query vertex
    u_q". Each attempt grows a group greedily — start at ``u_q``, keep a
    frontier of neighbouring candidates, and repeatedly absorb a random
    frontier member that is pairwise-compatible (score >= gamma) with
    everyone already in the group — until the group reaches ``tau`` or
    the frontier runs dry.

    Args:
        network: the spatial-social network.
        query_user: the issuer ``u_q``.
        tau: group size.
        gamma: pairwise interest threshold.
        rng: a ``numpy.random.Generator``.
        num_samples: number of *distinct* groups to aim for.
        allowed: optional candidate whitelist (``S_cand``).
        score_fn: pairwise score (defaults to Eq. 1's dot product).
        max_attempts_factor: give up after
            ``max_attempts_factor * num_samples`` failed expansions.

    Returns:
        Up to ``num_samples`` distinct valid groups (fewer when the
        neighbourhood is too sparse). Deterministic for a given ``rng``
        state.
    """
    social = network.social
    if not social.has_user(query_user):
        raise UnknownEntityError(f"unknown query user {query_user}")
    if score_fn is None:
        score_fn = interest_score
    if tau == 1:
        return [frozenset((query_user,))]

    def permitted(uid: int) -> bool:
        return allowed is None or uid in allowed or uid == query_user

    interests: Dict[int, np.ndarray] = {}

    def vector(uid: int) -> np.ndarray:
        if uid not in interests:
            interests[uid] = social.user(uid).interests
        return interests[uid]

    found: Set[FrozenSet[int]] = set()
    attempts = 0
    max_attempts = max_attempts_factor * max(num_samples, 1)
    while len(found) < num_samples and attempts < max_attempts:
        attempts += 1
        group = [query_user]
        member_set = {query_user}
        frontier = [
            nbr for nbr in social.friends(query_user) if permitted(nbr)
        ]
        while len(group) < tau and frontier:
            idx = int(rng.integers(len(frontier)))
            candidate = frontier.pop(idx)
            if candidate in member_set:
                continue
            if any(
                score_fn(vector(candidate), vector(member)) < gamma
                for member in group
            ):
                continue
            group.append(candidate)
            member_set.add(candidate)
            for nbr in social.friends(candidate):
                if nbr not in member_set and permitted(nbr):
                    frontier.append(nbr)
        if len(group) == tau:
            found.add(frozenset(group))
    return sorted(found, key=sorted)
