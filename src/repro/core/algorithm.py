"""GP-SSN query answering via dual index traversal (Algorithm 2, Section 5).

:class:`GPSSNQueryProcessor` owns the two indexes (I_R over POIs, I_S
over users, plus the pivot tables both rely on) and answers queries by
the paper's parallel top-down traversal:

1. descend I_S level by level, applying the user pruning (interest
   region, Lemma 8; hop distance, Lemma 9; and their object-level
   counterparts, Lemmas 3-4) to keep a shrinking candidate set
   ``S_cand``;
2. in lockstep, sweep a min-heap over I_R ordered by the pivot-based
   distance lower bound (Eq. 17), applying matching-score pruning
   (Lemma 6 / Lemma 1) and distance pruning against the best-so-far
   upper bound ``delta`` (Eqs. 16 / 5);
3. drain the remaining I_R levels once I_S bottoms out (lines 27-28);
4. refine: Corollary-2 user pruning, exact hop/interest checks, then
   enumerate connected ``tau``-groups and evaluate candidate seeds in
   ascending distance order with early termination (lines 29-31).

The processor also records every measurement the experiments need: CPU
time, simulated page accesses, and per-rule pruning tallies.
"""

from __future__ import annotations

import heapq
import math
import time
from bisect import insort
from math import comb
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..exceptions import (
    IndexStateError,
    InvalidParameterError,
    UnknownEntityError,
)
from ..index.pivots import (
    RoadPivotIndex,
    SocialPivotIndex,
    pivot_lower_bound,
    select_pivots_road,
    select_pivots_social,
)
from ..index.road_index import AugmentedPOI, RoadIndex, RoadIndexNode
from ..index.social_index import AugmentedUser, SocialIndex, SocialIndexNode
from ..network import SpatialSocialNetwork
from ..obs.registry import Recorder
from ..roadnet.shortest_path import position_distance_from_map
from .metrics import MetricScorer
from .index_pruning import (
    lb_dist_sn_social_node,
    lb_maxdist_road_node,
    social_node_distance_prunable,
    ub_match_score_poi,
    ub_match_score_road_node,
    ub_maxdist_road_node,
)
from .pruning import matching_score_prunable, social_distance_prunable
from .query import GPSSNAnswer, GPSSNQuery, PruningCounters, QueryStatistics
from .refinement import (
    PairKernel,
    best_region_for_seed,
    enumerate_connected_groups,
    group_distance_maps,
    sample_connected_groups,
)
from .scores import match_score

SCandidate = Union[SocialIndexNode, AugmentedUser]


class PruningToggles:
    """Enable/disable individual pruning rules (for ablation studies).

    All rules default to on; the ablation benchmark switches them off one
    at a time to measure each rule's contribution. Disabling a rule never
    changes answers (pruning is only ever safe discarding), only cost.
    """

    __slots__ = ("interest", "social_distance", "matching", "road_distance")

    def __init__(
        self,
        interest: bool = True,
        social_distance: bool = True,
        matching: bool = True,
        road_distance: bool = True,
    ) -> None:
        self.interest = interest
        self.social_distance = social_distance
        self.matching = matching
        self.road_distance = road_distance


class GPSSNQueryProcessor:
    """Index-backed GP-SSN query processor (the paper's main algorithm).

    Builds both indexes once; :meth:`answer` serves any number of queries
    against them.
    """

    def __init__(
        self,
        network: SpatialSocialNetwork,
        num_road_pivots: int = 5,
        num_social_pivots: int = 5,
        r_min: float = 0.5,
        r_max: float = 4.0,
        max_entries: int = 16,
        leaf_size: int = 16,
        seed: int = 7,
        road_pivots: Optional[RoadPivotIndex] = None,
        social_pivots: Optional[SocialPivotIndex] = None,
        toggles: Optional[PruningToggles] = None,
        recorder: Optional[Recorder] = None,
        distance_engine: Optional[str] = None,
        refinement_kernel: str = "vector",
    ) -> None:
        self.toggles = toggles or PruningToggles()
        if refinement_kernel not in ("vector", "scalar"):
            raise InvalidParameterError(
                f"unknown refinement kernel {refinement_kernel!r}; "
                "expected 'vector' or 'scalar'"
            )
        # "vector" evaluates (group, seed) pairs through the batched
        # numpy PairKernel; "scalar" keeps the per-pair reference path
        # (best_region_for_seed) the kernel is validated against.
        self.refinement_kernel = refinement_kernel
        self._kernel: Optional[PairKernel] = None
        # Engine selection happens before index construction so the
        # offline region sweeps already run on the chosen kernel; None
        # keeps whatever engine the network is already using.
        if distance_engine is not None:
            network.use_distance_engine(distance_engine)
        # Default recorder: NullTracer (no span overhead) + live metrics
        # registry (absorbed once per query, off the hot path). Swap in
        # Recorder.traced() — or assign .recorder directly — to capture
        # per-phase span trees.
        self.recorder = recorder or Recorder()
        self.network = network
        rng = np.random.default_rng(seed)
        self.road_pivots = road_pivots or select_pivots_road(
            network.road, num_road_pivots, rng
        )
        self.social_pivots = social_pivots or select_pivots_social(
            network.social, num_social_pivots, rng
        )
        self.road_index = RoadIndex(
            network, self.road_pivots,
            r_min=r_min, r_max=r_max, max_entries=max_entries,
        )
        self.social_index = SocialIndex(
            network, self.social_pivots, self.road_pivots, leaf_size=leaf_size
        )
        self.r_min = r_min
        self.r_max = r_max
        self._built_version = network.version
        self._build_args = dict(
            num_road_pivots=num_road_pivots,
            num_social_pivots=num_social_pivots,
            r_min=r_min, r_max=r_max,
            max_entries=max_entries, leaf_size=leaf_size, seed=seed,
            distance_engine=distance_engine,
            refinement_kernel=refinement_kernel,
        )

    def _pair_kernel(self) -> PairKernel:
        """The vectorized refinement kernel, rebuilt on network changes."""
        kernel = self._kernel
        if kernel is None or kernel.version != self.network.version:
            kernel = self._kernel = PairKernel(self.network)
        return kernel

    def rebuild(self) -> None:
        """Rebuild pivots and both indexes against the current network.

        Required after mutating the network (adding/removing POIs or
        users): the frozen indexes capture the network version at build
        time and :meth:`answer` refuses to serve stale structures.
        """
        fresh = GPSSNQueryProcessor(
            self.network, toggles=self.toggles, recorder=self.recorder,
            **self._build_args
        )
        self.road_pivots = fresh.road_pivots
        self.social_pivots = fresh.social_pivots
        self.road_index = fresh.road_index
        self.social_index = fresh.social_index
        self._built_version = self.network.version

    def note_incremental_maintenance(self) -> None:
        """Accept the current network version after incremental upkeep.

        The dynamic maintenance layer
        (:class:`repro.dynamic.maintenance.DynamicIndexMaintainer`)
        updates the pivot maps and both indexes in place instead of
        rebuilding; this re-arms :meth:`answer` at the new version.
        Calling it without having actually maintained the indexes
        silently serves stale structures — it is the maintainer's hook,
        not an escape hatch.
        """
        self._built_version = self.network.version

    def _check_fresh(self) -> None:
        if self.network.version != self._built_version:
            raise IndexStateError(
                "the network changed after the indexes were built; call "
                "rebuild() before answering further queries"
            )

    # ------------------------------------------------------------------
    # measurement plumbing shared by every entry point
    # ------------------------------------------------------------------

    def _begin_query(self) -> Tuple[QueryStatistics, int, int]:
        """Reset per-query counters; snapshot the oracle's tallies."""
        stats = QueryStatistics()
        stats.pruning.total_users = self.network.social.num_users
        stats.pruning.total_pois = self.network.num_pois
        self.road_index.counter.reset()
        self.social_index.counter.reset()
        oracle = self.network.distances
        return stats, oracle.searches_run, oracle.cache_hits

    def _finish_query(
        self,
        stats: QueryStatistics,
        qspan,
        base_searches: int,
        base_hits: int,
        query: Optional[GPSSNQuery] = None,
    ) -> None:
        """Collect I/O + oracle deltas, phase times, and feed the recorder.

        ``query`` enables the total-possible-pairs denominator (the
        Figure-7(d) normalization); the sampled entry point omits it, as
        it always has.
        """
        stats.page_accesses = (
            self.road_index.counter.snapshot()
            + self.social_index.counter.snapshot()
        )
        oracle = self.network.distances
        stats.dijkstra_searches = oracle.searches_run - base_searches
        stats.dijkstra_cache_hits = oracle.cache_hits - base_hits
        metrics = self.recorder.metrics
        metrics.set_gauge("dijkstra.cache_hit_rate", oracle.hit_rate)
        engine = oracle.engine
        for stat_name, value in engine.stats().items():
            metrics.set_gauge(f"dist_engine.{engine.name}.{stat_name}", value)
        if query is not None:
            m = self.network.social.num_users
            n = self.network.num_pois
            stats.pruning.total_possible_pairs = float(
                comb(max(m - 1, 0), min(query.tau - 1, max(m - 1, 0))) * n
            )
        stats.phase_times = qspan.child_totals()
        self.recorder.record_query(stats)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def answer(
        self,
        query: GPSSNQuery,
        max_groups: Optional[int] = None,
    ) -> Tuple[GPSSNAnswer, QueryStatistics]:
        """Answer one GP-SSN query.

        Args:
            query: the query (issuer, tau, gamma, theta, radius).
            max_groups: optional cap on the number of user groups
                enumerated during refinement (the paper's subset-sampling
                escape hatch for extreme candidate sets); ``None`` means
                exhaustive refinement.

        Returns:
            ``(answer, statistics)``. The answer is
            :meth:`GPSSNAnswer.empty` when no pair satisfies all six
            predicates of Definition 5.
        """
        self._check_fresh()
        if not (self.r_min <= query.radius <= self.r_max):
            raise InvalidParameterError(
                f"query radius {query.radius} outside the index's "
                f"[{self.r_min}, {self.r_max}] envelope"
            )
        if not self.network.social.has_user(query.query_user):
            raise UnknownEntityError(f"unknown query user {query.query_user}")

        stats, base_searches, base_hits = self._begin_query()
        with self.recorder.span("query") as qspan:
            started = time.perf_counter()

            scorer = MetricScorer(query.metric)
            s_cand, r_cand, delta = self._traverse(query, stats.pruning, scorer)
            stats.candidate_users = len(s_cand)
            stats.candidate_pois = len(r_cand)

            answers = self._refine(
                query, s_cand, r_cand, stats, max_groups, scorer
            )
            answer = answers[0] if answers else GPSSNAnswer.empty()

            stats.cpu_time_sec = time.perf_counter() - started
        self._finish_query(stats, qspan, base_searches, base_hits, query)
        return answer, stats

    def answer_topk(
        self,
        query: GPSSNQuery,
        k: int,
        max_groups: Optional[int] = None,
    ) -> Tuple[List[GPSSNAnswer], QueryStatistics]:
        """The ``k`` best distinct ``(S, R)`` pairs, ascending by value.

        A natural extension of Definition 5: instead of the single
        minimizing pair, return the ``k`` feasible pairs with the
        smallest maximum distances (fewer when fewer exist). The
        traversal suspends the best-so-far distance pruning (it only
        witnesses the top-1) and the refinement prunes against the
        running k-th best instead.
        """
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        self._check_fresh()
        if not (self.r_min <= query.radius <= self.r_max):
            raise InvalidParameterError(
                f"query radius {query.radius} outside the index's "
                f"[{self.r_min}, {self.r_max}] envelope"
            )
        if not self.network.social.has_user(query.query_user):
            raise UnknownEntityError(f"unknown query user {query.query_user}")

        stats, base_searches, base_hits = self._begin_query()
        with self.recorder.span("query") as qspan:
            started = time.perf_counter()

            scorer = MetricScorer(query.metric)
            s_cand, r_cand, _delta = self._traverse(
                query, stats.pruning, scorer,
                allow_delta_pruning=(k == 1),
            )
            stats.candidate_users = len(s_cand)
            stats.candidate_pois = len(r_cand)
            answers = self._refine(
                query, s_cand, r_cand, stats, max_groups, scorer, k=k
            )

            stats.cpu_time_sec = time.perf_counter() - started
        self._finish_query(stats, qspan, base_searches, base_hits, query)
        return answers, stats

    def answer_sampled(
        self,
        query: GPSSNQuery,
        num_samples: int = 100,
        seed: int = 0,
    ) -> Tuple[GPSSNAnswer, QueryStatistics]:
        """Approximate answering via subset sampling (paper future work).

        Instead of enumerating every connected ``tau``-group in the
        candidate set, randomly expand ``num_samples`` groups from the
        query vertex (Section 5's "subset sampling by randomly expanding
        the subgraph starting from the query vertex") and refine only
        those. The returned answer always satisfies all six predicates
        of Definition 5 but its objective may exceed the true optimum.
        """
        if num_samples < 1:
            raise InvalidParameterError(
                f"num_samples must be >= 1, got {num_samples}"
            )
        self._check_fresh()
        if not (self.r_min <= query.radius <= self.r_max):
            raise InvalidParameterError(
                f"query radius {query.radius} outside the index's "
                f"[{self.r_min}, {self.r_max}] envelope"
            )
        if not self.network.social.has_user(query.query_user):
            raise UnknownEntityError(f"unknown query user {query.query_user}")

        stats, base_searches, base_hits = self._begin_query()
        with self.recorder.span("query") as qspan:
            started = time.perf_counter()

            scorer = MetricScorer(query.metric)
            s_cand, r_cand, _delta = self._traverse(query, stats.pruning, scorer)
            stats.candidate_users = len(s_cand)
            stats.candidate_pois = len(r_cand)

            with self.recorder.span("refine"):
                ex = (
                    self.recorder.explain
                    if self.recorder.explain.active else None
                )
                network = self.network
                social = network.social
                uq_id = query.query_user
                allowed = {au.user_id for au in s_cand} | {uq_id}
                rng = np.random.default_rng(seed)
                groups = sample_connected_groups(
                    network, uq_id, query.tau, query.gamma, rng, num_samples,
                    allowed=allowed, score_fn=scorer.score,
                )

                use_vector = self.refinement_kernel == "vector"
                kernel = self._pair_kernel() if use_vector else None
                uq_user = social.user(uq_id)
                if use_vector:
                    uq_row = kernel.member_row(uq_id)
                    seed_dist = {
                        ap.poi_id: float(uq_row[kernel.poi_index[ap.poi_id]])
                        for ap in r_cand
                    }
                else:
                    uq_map = network.distances.distances_from(
                        ("user", uq_id), uq_user.home
                    )
                    seed_dist = {
                        ap.poi_id: position_distance_from_map(
                            network.road, uq_map, ap.poi.position,
                            uq_user.home,
                        )
                        for ap in r_cand
                    }
                seeds = sorted(
                    seed_dist, key=lambda pid: (seed_dist[pid], pid)
                )

                best_value = math.inf
                best_pair = None
                for group in groups:
                    stats.groups_refined += 1
                    if use_vector:
                        state = kernel.group_state(group, query.theta)
                    else:
                        dist_maps = group_distance_maps(network, group)
                        group_interests = [
                            social.user(uid).interests for uid in group
                        ]
                    if ex is not None:
                        ex.visit("refine.pairs", len(seeds))
                    for seed_rank, poi_seed in enumerate(seeds):
                        if seed_dist[poi_seed] >= best_value:
                            if ex is not None:
                                ex.prune(
                                    "refine.pairs", "pair.distance",
                                    len(seeds) - seed_rank,
                                    seed_dist[poi_seed] - best_value,
                                )
                            break
                        if ex is not None:
                            ex.survive("refine.pairs")
                        stats.pruning.candidate_pairs_examined += 1
                        region_ids = self.road_index.region(
                            poi_seed, query.radius
                        )
                        if use_vector:
                            result = kernel.best_region(
                                kernel.ball(
                                    poi_seed, region_ids,
                                    cache_key=(poi_seed, query.radius),
                                ),
                                state,
                            )
                        else:
                            result = best_region_for_seed(
                                network, group_interests, dist_maps,
                                poi_seed, region_ids, query.theta,
                            )
                        if result is None:
                            continue
                        pois, value = result
                        if value < best_value:
                            best_value = value
                            best_pair = (frozenset(group), pois)

            stats.cpu_time_sec = time.perf_counter() - started
        self._finish_query(stats, qspan, base_searches, base_hits)
        if best_pair is None:
            return GPSSNAnswer.empty(), stats
        return (
            GPSSNAnswer(
                users=best_pair[0], pois=best_pair[1],
                max_distance=best_value,
            ),
            stats,
        )

    # ------------------------------------------------------------------
    # phase 1: dual index traversal (Algorithm 2 lines 1-28)
    # ------------------------------------------------------------------

    def _traverse(
        self,
        query: GPSSNQuery,
        counters: PruningCounters,
        scorer: Optional[MetricScorer] = None,
        allow_delta_pruning: bool = True,
    ) -> Tuple[List[AugmentedUser], List[AugmentedPOI], float]:
        with self.recorder.span("traverse") as tspan:
            users, r_cand, delta = self._traverse_impl(
                query, counters, scorer, allow_delta_pruning
            )
            tspan.set(
                candidate_users=len(users), candidate_pois=len(r_cand)
            )
            return users, r_cand, delta

    def _traverse_impl(
        self,
        query: GPSSNQuery,
        counters: PruningCounters,
        scorer: Optional[MetricScorer] = None,
        allow_delta_pruning: bool = True,
    ) -> Tuple[List[AugmentedUser], List[AugmentedPOI], float]:
        scorer = scorer or MetricScorer(query.metric)
        rec = self.recorder
        # The funnel hooks sit inside the hot loops, so they are guarded
        # by one None check instead of a no-op method call: with explain
        # off (the default) the traversal pays a single local-variable
        # branch per pruning decision.
        ex = rec.explain if rec.explain.active else None
        # Top-k queries must keep every candidate whose region could be
        # among the k best; the best-so-far bound delta only witnesses
        # the single best pair, so delta-based pruning is suspended.
        use_delta = self.toggles.road_distance and allow_delta_pruning
        use_vector = self.refinement_kernel == "vector"
        kernel = self._pair_kernel() if use_vector else None
        social = self.network.social
        if ex is not None:
            ex.visit("traverse.social", social.num_users)
            ex.visit("traverse.road", self.network.num_pois)
        uq = social.user(query.query_user)
        uq_social_pivot = self.social_pivots.distances(query.query_user)
        uq_road_pivot = self.road_pivots.distances(uq.home)

        # line 1: S_cand starts at the I_S root, delta at +inf
        s_cand: List[SCandidate] = [self.social_index.root]
        delta = math.inf
        witness_checks = 0  # Eq. 18 gate evaluations (reported as a metric)
        # lines 2-3: heap over I_R seeded with the root at key 0
        tick = 0  # heap tiebreaker
        heap: List[Tuple[float, int, RoadIndexNode]] = [(0.0, tick, self.road_index.root)]
        r_cand: List[AugmentedPOI] = []

        def s_side_pivot_ubs() -> List[float]:
            """Per-pivot ``max_{u in S} dist_RN(u, rp_k)`` upper bounds."""
            ubs = []
            for k in range(self.road_pivots.num_pivots):
                worst = 0.0
                for entry in s_cand:
                    if isinstance(entry, SocialIndexNode):
                        val = entry.ub_road_pivot[k]
                    else:
                        val = entry.road_pivot_dists[k]
                    if val > worst:
                        worst = val
                ubs.append(worst)
            return ubs

        def s_side_floor_vectors() -> List[np.ndarray]:
            """One per-entry interest floor for every S_cand element.

            For an index node the floor is the node's per-topic lower
            bound (``e_S.lb_w``, Eq. 9), which under-estimates the
            matching score of every user beneath it; for a user it is the
            exact interest vector. Feeding the Eq. 18 gate per entry
            (instead of one global elementwise min) keeps the bound tight
            once the traversal reaches user level.
            """
            vectors: List[np.ndarray] = []
            for entry in s_cand:
                if isinstance(entry, SocialIndexNode):
                    vectors.append(np.asarray(entry.interest_mbr.low))
                else:
                    vectors.append(entry.user.interests)
            return vectors

        def floor_matrix_of(
            floor_vectors: List[np.ndarray],
        ) -> Optional[np.ndarray]:
            """Stacked (entries x topics) image of the interest floors,
            built per level for the vectorized Eq. 18 gate."""
            if not use_vector or not floor_vectors:
                return None
            return np.stack(
                [
                    np.asarray(vec, dtype=np.float64)
                    for vec in floor_vectors
                ]
            )

        def witness_feasible(
            ap: AugmentedPOI,
            floor_vectors: List[np.ndarray],
            floor_matrix: Optional[np.ndarray] = None,
        ) -> bool:
            """Eq. 18 gate: could ``ball(ap, r)`` theta-match every user
            that may remain in S? Checked on the seed's *subset* keywords
            (a valid lower bound of the region's coverage) against every
            surviving S_cand entry's interest floor."""
            nonlocal witness_checks
            witness_checks += 1
            if not floor_vectors:
                return False
            if floor_matrix is not None:
                # All entries at once: summing the keyword columns in
                # ascending topic order reproduces match_score's running
                # sum term-for-term, so the >= theta decisions match the
                # scalar gate exactly.
                scores: Optional[np.ndarray] = None
                for f in sorted(ap.sub_keywords):
                    col = floor_matrix[:, f]
                    scores = col if scores is None else scores + col
                if scores is None:
                    return 0.0 >= query.theta
                return bool((scores >= query.theta).all())
            return all(
                match_score(vec, ap.sub_keywords) >= query.theta
                for vec in floor_vectors
            )

        def process_road_entry(
            node: RoadIndexNode,
            out_heap: Optional[List[Tuple[float, int, RoadIndexNode]]],
            s_ubs: Sequence[float],
            floor_vectors: List[np.ndarray],
            floor_matrix: Optional[np.ndarray] = None,
        ) -> None:
            """Lines 15-25: expand one popped I_R node."""
            nonlocal delta, tick
            self.road_index.visit(node)
            if node.is_leaf:
                for ap in node.pois:
                    # line 17: matching score pruning w.r.t. u_q (Lemma 1)
                    if self.toggles.matching:
                        ub_ms = ub_match_score_poi(uq.interests, ap)
                        if matching_score_prunable(ub_ms, query.theta):
                            counters.road_object_pruned += 1
                            counters.road_pruned_by_matching += 1
                            if ex is not None:
                                ex.prune(
                                    "traverse.road", "obj.poi_matching",
                                    margin=query.theta - ub_ms,
                                )
                            continue
                    # line 18: distance pruning w.r.t. S_cand (Lemma 5)
                    lb = lb_maxdist_road_node(
                        uq_road_pivot, ap.pivot_dists, ap.pivot_dists
                    )
                    if use_delta and lb > delta:
                        counters.road_object_pruned += 1
                        counters.road_pruned_by_distance += 1
                        if ex is not None:
                            ex.prune(
                                "traverse.road", "obj.poi_distance",
                                margin=lb - delta,
                            )
                        continue
                    # lines 19-20: keep the POI, tighten delta
                    r_cand.append(ap)
                    if witness_feasible(ap, floor_vectors, floor_matrix):
                        ub = ub_maxdist_road_node(
                            s_ubs, ap.pivot_dists, query.radius
                        )
                        if ub < delta:
                            delta = ub
            else:
                for child in node.children:
                    # line 23: matching score pruning (Lemma 6)
                    if self.toggles.matching:
                        ub_ms = ub_match_score_road_node(uq.interests, child)
                        if matching_score_prunable(ub_ms, query.theta):
                            counters.road_index_pruned += child.num_pois
                            counters.road_pruned_by_matching += child.num_pois
                            if ex is not None:
                                ex.prune(
                                    "traverse.road", "idx.road_matching",
                                    child.num_pois, query.theta - ub_ms,
                                )
                            continue
                    # line 24: distance pruning (Lemma 7 via Eq. 17 and delta)
                    lb = lb_maxdist_road_node(
                        uq_road_pivot, child.lb_pivot_dists, child.ub_pivot_dists
                    )
                    if use_delta and lb > delta:
                        counters.road_index_pruned += child.num_pois
                        counters.road_pruned_by_distance += child.num_pois
                        if ex is not None:
                            ex.prune(
                                "traverse.road", "idx.road_distance",
                                child.num_pois, lb - delta,
                            )
                        continue
                    # line 25: defer to the next level's heap
                    tick += 1
                    target = out_heap if out_heap is not None else heap
                    heapq.heappush(target, (lb, tick, child))

        # lines 4-26: level-synchronised descent of I_S and I_R
        for _level in range(self.social_index.height):
            # one I_S level: Lemmas 3-4 (objects) and 8-9 (nodes)
            with rec.span("traverse.social_pruning"):
                next_s: List[SCandidate] = []
                for entry in s_cand:
                    if isinstance(entry, AugmentedUser):
                        next_s.append(entry)  # already at object level
                        continue
                    self.social_index.visit(entry)
                    if entry.is_leaf:
                        for au in entry.users:
                            if au.user_id == query.query_user:
                                next_s.append(au)  # u_q is never pruned
                                continue
                            # Lemma 4: pivot-based hop lower bound (checked
                            # first — it is the cheaper predicate)
                            lb_hops = pivot_lower_bound(
                                au.social_pivot_dists, uq_social_pivot
                            )
                            if self.toggles.social_distance and social_distance_prunable(
                                lb_hops, query.tau
                            ):
                                counters.social_object_pruned += 1
                                counters.social_pruned_by_distance += 1
                                if ex is not None:
                                    ex.prune(
                                        "traverse.social", "obj.social_hops",
                                        margin=lb_hops - query.tau,
                                    )
                                continue
                            # Lemma 3: object-level interest pruning (under
                            # the query's interest metric)
                            if self.toggles.interest:
                                sc = scorer.score(
                                    uq.interests, au.user.interests
                                )
                                if sc < query.gamma:
                                    counters.social_object_pruned += 1
                                    counters.social_pruned_by_interest += 1
                                    if ex is not None:
                                        ex.prune(
                                            "traverse.social",
                                            "obj.social_interest",
                                            margin=query.gamma - sc,
                                        )
                                    continue
                            next_s.append(au)
                    else:
                        for child in entry.children:
                            if self._node_holds_query_user(child, query.query_user):
                                next_s.append(child)  # u_q's subtree survives
                                continue
                            # Lemma 9: hop-distance pruning (cheaper, first)
                            lb_hops = lb_dist_sn_social_node(uq_social_pivot, child)
                            if self.toggles.social_distance and social_node_distance_prunable(
                                lb_hops, query.tau
                            ):
                                counters.social_index_pruned += child.num_users
                                counters.social_pruned_by_distance += child.num_users
                                if ex is not None:
                                    ex.prune(
                                        "traverse.social", "idx.social_hops",
                                        child.num_users,
                                        lb_hops - query.tau,
                                    )
                                continue
                            # Lemma 8: interest-region pruning (metric-aware
                            # upper bound over the node's interest MBR)
                            if self.toggles.interest:
                                ub_int = scorer.ub_over_box(
                                    child.interest_mbr, uq.interests
                                )
                                if ub_int < query.gamma:
                                    counters.social_index_pruned += child.num_users
                                    counters.social_pruned_by_interest += child.num_users
                                    if ex is not None:
                                        ex.prune(
                                            "traverse.social",
                                            "idx.social_interest",
                                            child.num_users,
                                            query.gamma - ub_int,
                                        )
                                    continue
                            next_s.append(child)
                s_cand = next_s

            # lines 11-26: one level of I_R under the refreshed S_cand
            # bounds — Lemmas 1/6 (matching), 5/7 (distance), Eq. 18 gate
            with rec.span("traverse.road_sweep"):
                s_ubs = s_side_pivot_ubs()
                floor = s_side_floor_vectors()
                floor_mat = floor_matrix_of(floor)
                next_heap: List[Tuple[float, int, RoadIndexNode]] = []
                while heap:
                    key, _t, node = heapq.heappop(heap)
                    if use_delta and key > delta:  # line 14: dominated
                        dominated = sum(
                            h[2].num_pois for h in heap
                        ) + node.num_pois
                        counters.road_index_pruned += dominated
                        counters.road_pruned_by_distance += dominated
                        if ex is not None:
                            ex.prune(
                                "traverse.road", "idx.road_distance",
                                dominated, key - delta,
                            )
                        heap.clear()
                        break
                    process_road_entry(node, next_heap, s_ubs, floor, floor_mat)
                heap = next_heap  # line 26

        # lines 27-28: I_R may be deeper than I_S; drain it best-first
        with rec.span("traverse.road_drain"):
            s_ubs = s_side_pivot_ubs()
            floor = s_side_floor_vectors()
            floor_mat = floor_matrix_of(floor)
            while heap:
                key, _t, node = heapq.heappop(heap)
                if use_delta and key > delta:
                    dominated = sum(
                        h[2].num_pois for h in heap
                    ) + node.num_pois
                    counters.road_index_pruned += dominated
                    counters.road_pruned_by_distance += dominated
                    if ex is not None:
                        ex.prune(
                            "traverse.road", "idx.road_distance",
                            dominated, key - delta,
                        )
                    heap.clear()
                    break
                process_road_entry(node, None, s_ubs, floor, floor_mat)

        users = [e for e in s_cand if isinstance(e, AugmentedUser)]

        # Line 30 (distance half): with S_cand fully at user level the
        # bounds are at their tightest. Pick the best witness by its
        # pivot upper bound, evaluate Eq. 5 for it *exactly* (one
        # Dijkstra from the witness covers every candidate user), and
        # discard candidate POIs whose exact distance to u_q — a valid
        # lower bound of maxdist, since the seed belongs to its region —
        # exceeds the witness bound.
        if use_delta and users and r_cand:
            with rec.span("traverse.witness_filter"):
                s_ubs = s_side_pivot_ubs()
                floor = s_side_floor_vectors()
                floor_mat = floor_matrix_of(floor)
                network = self.network
                witness = None
                witness_key = math.inf
                for ap in r_cand:
                    if witness_feasible(ap, floor, floor_mat):
                        ub = ub_maxdist_road_node(
                            s_ubs, ap.pivot_dists, query.radius
                        )
                        if ub < witness_key:
                            witness_key = ub
                            witness = ap
                best_ub = delta
                if witness is not None:
                    if use_vector:
                        # One dense gather over every candidate user's
                        # home replaces the per-user map lookups.
                        dense_w = network.distances.dense_distances_from(
                            ("poi", witness.poi_id), witness.poi.position
                        )
                        positions, user_index = kernel.user_positions()
                        user_row = positions.distances_from_dense(
                            network.road, dense_w, witness.poi.position
                        )
                        user_idx = np.fromiter(
                            (user_index[au.user_id] for au in users),
                            dtype=np.int64, count=len(users),
                        )
                        exact_user_max = float(user_row[user_idx].max())
                    else:
                        w_map = network.distances.distances_from(
                            ("poi", witness.poi_id), witness.poi.position
                        )
                        exact_user_max = max(
                            position_distance_from_map(
                                network.road, w_map, au.user.home,
                                witness.poi.position
                            )
                            for au in users
                        )
                    # Eq. 5: the second term max dist(o_i, o_j) over the
                    # witness region is at most the region radius r.
                    best_ub = min(best_ub, exact_user_max + query.radius)
                if not math.isinf(best_ub):
                    if use_vector:
                        uq_row = kernel.member_row(query.query_user)
                        poi_idx = np.fromiter(
                            (kernel.poi_index[ap.poi_id] for ap in r_cand),
                            dtype=np.int64, count=len(r_cand),
                        )
                        d_arr = uq_row[poi_idx]
                        prune_mask = d_arr > best_ub
                        n_pruned = int(prune_mask.sum())
                        if n_pruned:
                            counters.road_object_pruned += n_pruned
                            counters.road_pruned_by_distance += n_pruned
                            if ex is not None:
                                ex.prune_batch(
                                    "traverse.road", "obj.poi_witness",
                                    d_arr[prune_mask] - best_ub,
                                )
                        r_cand = [
                            ap for ap, pruned in zip(r_cand, prune_mask)
                            if not pruned
                        ]
                    else:
                        uq_map = network.distances.distances_from(
                            ("user", query.query_user), uq.home
                        )
                        kept = []
                        for ap in r_cand:
                            d_uq = position_distance_from_map(
                                network.road, uq_map, ap.poi.position, uq.home
                            )
                            if d_uq > best_ub:
                                counters.road_object_pruned += 1
                                counters.road_pruned_by_distance += 1
                                if ex is not None:
                                    ex.prune(
                                        "traverse.road", "obj.poi_witness",
                                        margin=d_uq - best_ub,
                                    )
                            else:
                                kept.append(ap)
                        r_cand = kept
        rec.metrics.inc("traverse.witness_checks", witness_checks)
        if ex is not None:
            ex.survive("traverse.social", len(users))
            ex.survive("traverse.road", len(r_cand))
        return users, r_cand, delta

    def _node_holds_query_user(
        self, node: SocialIndexNode, query_user: int
    ) -> bool:
        if node.is_leaf:
            return any(au.user_id == query_user for au in node.users)
        return any(
            self._node_holds_query_user(child, query_user)
            for child in node.children
        )

    # ------------------------------------------------------------------
    # phase 2: refinement (Algorithm 2 lines 29-31)
    # ------------------------------------------------------------------

    def _refine(
        self,
        query: GPSSNQuery,
        s_cand: List[AugmentedUser],
        r_cand: List[AugmentedPOI],
        stats: QueryStatistics,
        max_groups: Optional[int],
        scorer: Optional[MetricScorer] = None,
        k: int = 1,
    ) -> List[GPSSNAnswer]:
        with self.recorder.span("refine"):
            return self._refine_impl(
                query, s_cand, r_cand, stats, max_groups, scorer, k
            )

    def _refine_impl(
        self,
        query: GPSSNQuery,
        s_cand: List[AugmentedUser],
        r_cand: List[AugmentedPOI],
        stats: QueryStatistics,
        max_groups: Optional[int],
        scorer: Optional[MetricScorer] = None,
        k: int = 1,
    ) -> List[GPSSNAnswer]:
        scorer = scorer or MetricScorer(query.metric)
        rec = self.recorder
        ex = rec.explain if rec.explain.active else None
        network = self.network
        social = network.social
        uq_id = query.query_user

        # line 29: Corollary-2 user pruning, iterated to a fixpoint, on
        # top of an exact hop filter (tau-1 ball around u_q).
        with rec.span("refine.corollary2"):
            if ex is not None:
                ex.visit("refine.users", len(s_cand))
            reachable = social.hop_distances_from(
                uq_id, max_hops=query.tau - 1
            )
            survivors: List[AugmentedUser] = []
            for au in s_cand:
                if au.user_id == uq_id:
                    survivors.append(au)
                elif au.user_id in reachable:
                    survivors.append(au)
                else:
                    stats.pruning.social_object_pruned += 1
                    stats.pruning.social_pruned_by_distance += 1
                    if ex is not None:
                        ex.prune("refine.users", "refine.social_hops")
            survivors = self._corollary2_fixpoint(
                query, survivors, stats, scorer, explain=ex
            )
            if ex is not None:
                ex.survive("refine.users", len(survivors))

        allowed = {au.user_id for au in survivors}
        if uq_id not in allowed:
            allowed.add(uq_id)
        if len(allowed) < query.tau:
            return []

        use_vector = self.refinement_kernel == "vector"
        kernel = self._pair_kernel() if use_vector else None

        # line 30: exact matching/distance re-check of candidate POIs.
        with rec.span("refine.seed_filter"):
            if ex is not None:
                ex.visit("refine.seeds", len(r_cand))
            uq_user = social.user(uq_id)
            if use_vector:
                # One cached distance row covers every candidate seed
                # (bitwise-equal to the per-POI map lookups below).
                uq_row = kernel.member_row(uq_id)
                poi_index = kernel.poi_index
            else:
                uq_map = network.distances.distances_from(
                    ("user", uq_id), uq_user.home
                )
            seed_dist: Dict[int, float] = {}
            for ap in r_cand:
                if use_vector:
                    d = float(uq_row[poi_index[ap.poi_id]])
                else:
                    d = position_distance_from_map(
                        network.road, uq_map, ap.poi.position, uq_user.home
                    )
                # Exact Lemma-1 check on the seed's true superset keywords.
                ms = match_score(uq_user.interests, ap.sup_keywords)
                if ms < query.theta:
                    stats.pruning.road_object_pruned += 1
                    stats.pruning.road_pruned_by_matching += 1
                    if ex is not None:
                        ex.prune(
                            "refine.seeds", "refine.seed_matching",
                            margin=query.theta - ms,
                        )
                    continue
                seed_dist[ap.poi_id] = d
            # (distance, id) key: distance ties must not break on traversal
            # order, which depends on index structure and mutation history.
            seeds = sorted(seed_dist, key=lambda pid: (seed_dist[pid], pid))
            if ex is not None:
                ex.survive("refine.seeds", len(seeds))

        # line 31: enumerate groups, evaluate seeds with early termination.
        # `best` holds the running top-k distinct (S, R) pairs as sorted
        # (value, users, pois) key tuples; the k-th value is the pruning
        # threshold (any region of a seed farther from u_q than it cannot
        # enter the top-k, because the seed belongs to its region).
        best: List[Tuple[float, Tuple[int, ...], Tuple[int, ...]]] = []
        seen_pairs: Set[Tuple[frozenset, frozenset]] = set()
        n_seeds = len(seeds)
        kth = math.inf

        def accept(value: float, frozen_group: frozenset, pois: frozenset) -> None:
            """O(log k + k) sorted insert; maintains ``kth`` in place."""
            nonlocal kth
            seen_pairs.add((frozen_group, pois))
            insort(
                best, (value, tuple(sorted(frozen_group)), tuple(sorted(pois)))
            )
            if len(best) > k:
                dropped = best.pop()
                seen_pairs.discard(
                    (frozenset(dropped[1]), frozenset(dropped[2]))
                )
            kth = best[-1][0] if len(best) >= k else math.inf

        with rec.span("refine.enumerate"):
            groups = enumerate_connected_groups(
                network, uq_id, query.tau, query.gamma,
                allowed=allowed, limit=max_groups, score_fn=scorer.score,
                explain=ex,
            )
            if use_vector:
                seed_dist_arr = np.fromiter(
                    (seed_dist[s] for s in seeds),
                    dtype=np.float64, count=n_seeds,
                )
                radius = query.radius
                theta = query.theta
                region = self.road_index.region
                counters = stats.pruning
                # Every seed's ball is built once per query (and cached
                # across queries under (seed, radius)); the stacked
                # full-cover matrix drives the per-group ball gate as a
                # single matmul over all seeds.
                balls = [
                    kernel.ball(s, region(s, radius), cache_key=(s, radius))
                    for s in seeds
                ]
                seed_dense_arr = np.fromiter(
                    (b.seed_dense for b in balls),
                    dtype=np.int64, count=n_seeds,
                )
                full_cover = (
                    np.stack([b.full_cover_f8 for b in balls])
                    if balls else None
                )
                for group in groups:
                    stats.groups_refined += 1
                    state = kernel.group_state(group, theta)
                    frozen_group = state.frozen
                    if ex is not None:
                        ex.visit("refine.pairs", n_seeds)
                    if not n_seeds:
                        continue
                    # Per-group, all seeds at once: the seed-alone gate
                    # and the exact pair value lower bound (the seed is
                    # always in its region, so no region of seed o can
                    # score below max_{u in S} dist_RN(u, o)), plus the
                    # full-ball feasibility gate as one matmul.
                    seed_ok = state.seed_feasible[seed_dense_arr].tolist()
                    seed_lb = state.gmax[seed_dense_arr].tolist()
                    ball_ok = (
                        (full_cover @ state.interests.T).min(axis=1)
                        >= theta
                    ).tolist()
                    # Lemma 5 / Eq. 6 against the sorted seed-distance
                    # array: seeds past `limit` all fail dist < kth, so
                    # the scalar loop's break point is one searchsorted.
                    i = 0
                    limit = int(
                        np.searchsorted(seed_dist_arr, kth, side="left")
                    )
                    while i < limit:
                        if ex is not None:
                            ex.survive("refine.pairs")
                        counters.candidate_pairs_examined += 1
                        idx = i
                        i += 1
                        lb = seed_lb[idx]
                        if seed_ok[idx]:
                            # Seed alone suffices: R = {o}, value known.
                            if lb >= kth:
                                continue
                            pois = frozenset((seeds[idx],))
                            value = lb
                        else:
                            # Infeasible ball, or value provably >= kth:
                            # the scan cannot produce a top-k entrant.
                            if not ball_ok[idx] or lb >= kth:
                                continue
                            result = kernel.best_region(
                                balls[idx], state, skip_gates=True
                            )
                            if result is None:
                                continue
                            pois, value = result
                        if (frozen_group, pois) in seen_pairs or value >= kth:
                            continue
                        accept(value, frozen_group, pois)
                        limit = int(
                            np.searchsorted(seed_dist_arr, kth, side="left")
                        )
                    if ex is not None and i < n_seeds:
                        ex.prune(
                            "refine.pairs", "pair.distance",
                            n_seeds - i,
                            float(seed_dist_arr[i]) - kth,
                        )
            else:
                for group in groups:
                    stats.groups_refined += 1
                    dist_maps = group_distance_maps(network, group)
                    group_interests = [
                        social.user(uid).interests for uid in group
                    ]
                    frozen_group = frozenset(group)
                    if ex is not None:
                        ex.visit("refine.pairs", n_seeds)
                    for seed_rank, seed in enumerate(seeds):
                        if seed_dist[seed] >= kth:
                            if ex is not None:
                                ex.prune(
                                    "refine.pairs", "pair.distance",
                                    n_seeds - seed_rank,
                                    seed_dist[seed] - kth,
                                )
                            break
                        if ex is not None:
                            ex.survive("refine.pairs")
                        stats.pruning.candidate_pairs_examined += 1
                        region_ids = self.road_index.region(
                            seed, query.radius
                        )
                        result = best_region_for_seed(
                            network, group_interests, dist_maps,
                            seed, region_ids, query.theta,
                        )
                        if result is None:
                            continue
                        pois, value = result
                        if (frozen_group, pois) in seen_pairs or value >= kth:
                            continue
                        accept(value, frozen_group, pois)

        return [
            GPSSNAnswer(
                users=frozenset(users), pois=frozenset(pois),
                max_distance=value,
            )
            for value, users, pois in best
        ]

    def _corollary2_fixpoint(
        self,
        query: GPSSNQuery,
        candidates: List[AugmentedUser],
        stats: QueryStatistics,
        scorer: Optional[MetricScorer] = None,
        explain=None,
    ) -> List[AugmentedUser]:
        """Corollary 2 applied until no more users fall out.

        A user incompatible (interest score below gamma) with at least
        ``|S'| - tau + 1`` members of the candidate superset cannot find
        ``tau - 1`` compatible companions, so it can be discarded; each
        removal shrinks ``|S'|`` and may expose further removals.
        """
        if not self.toggles.interest:
            return list(candidates)
        scorer = scorer or MetricScorer(query.metric)
        current = list(candidates)
        while True:
            size = len(current)
            if size < query.tau:
                return current
            # Vectorized pairwise scores: entry (i, j) of W @ W.T is
            # Interest_Score(u_i, u_j); hostile counts are row sums of
            # the sub-threshold mask (diagonal excluded).
            matrix = np.stack([au.user.interests for au in current])
            scores = scorer.pairwise_matrix(matrix)
            hostile_mask = scores < query.gamma
            np.fill_diagonal(hostile_mask, False)
            hostile = hostile_mask.sum(axis=1)
            threshold = size - query.tau + 1
            removed_idx = [
                i for i in range(size)
                if current[i].user_id != query.query_user
                and hostile[i] >= threshold
            ]
            if not removed_idx:
                return current
            removed_set = set(removed_idx)
            stats.pruning.social_object_pruned += len(removed_idx)
            stats.pruning.social_pruned_by_interest += len(removed_idx)
            if explain is not None:
                for i in removed_idx:
                    # Margin = hostile count beyond the Corollary-2
                    # threshold (how over-determined the removal was).
                    explain.prune(
                        "refine.users", "refine.corollary2",
                        margin=float(hostile[i] - threshold),
                    )
            current = [
                au for i, au in enumerate(current) if i not in removed_set
            ]
