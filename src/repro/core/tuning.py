"""Data-driven parameter suggestion (Section 2.2's tuning discussion).

The paper describes γ, θ, and r as *system* parameters "tuned from
historical query logs or data distributions of users/POIs":

* γ — "the x-th percentile over the distribution of common interest
  scores for pairwise users in social networks";
* θ — "the average (or x-percentile) of the matching scores between
  users and POI groups";
* 2r — "the maximum road-network distance that a user (or user group)
  may travel between any two POIs, based on the query history".

:func:`suggest_parameters` implements exactly that: it samples the three
distributions from the network (standing in for a query log) and returns
the requested percentiles, clipped to the index's radius envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import InvalidParameterError
from ..network import SpatialSocialNetwork
from .scores import interest_score, match_score


@dataclass(frozen=True)
class SuggestedParameters:
    """Suggested (γ, θ, r) with the empirical distributions' quartiles."""

    gamma: float
    theta: float
    radius: float
    interest_quartiles: tuple
    matching_quartiles: tuple
    poi_distance_quartiles: tuple


def suggest_parameters(
    network: SpatialSocialNetwork,
    percentile: float = 75.0,
    num_samples: int = 300,
    r_min: float = 0.5,
    r_max: float = 4.0,
    seed: int = 0,
) -> SuggestedParameters:
    """Suggest (γ, θ, r) from the network's data distributions.

    Args:
        network: the spatial-social network (proxy for a query log).
        percentile: the "x" in the paper's x-th-percentile rule; higher
            values yield stricter thresholds and a tighter radius.
        num_samples: sample size per distribution.
        r_min / r_max: the radius envelope the suggestion is clipped to
            (must match the index's envelope to be usable directly).
        seed: randomness for the sampling.

    Returns:
        The suggested parameters plus the quartiles of each sampled
        distribution (for reporting).
    """
    if not 0.0 < percentile < 100.0:
        raise InvalidParameterError(
            f"percentile must be in (0, 100), got {percentile}"
        )
    if num_samples < 10:
        raise InvalidParameterError("num_samples must be >= 10")
    rng = np.random.default_rng(seed)
    social = network.social
    users = list(social.user_ids())
    pois = network.poi_ids()
    if not users or not pois:
        raise InvalidParameterError("network needs users and POIs to tune")

    # --- gamma: pairwise interest scores of befriended users ------------
    # Friend pairs stand in for "user groups selected in the query log":
    # groups are always drawn from friends, so their score distribution
    # is the relevant one.
    interest_scores = []
    befriended = [u for u in users if social.friends(u)]
    for _ in range(num_samples):
        a = befriended[int(rng.integers(len(befriended)))]
        friends = sorted(social.friends(a))
        b = friends[int(rng.integers(len(friends)))]
        interest_scores.append(
            interest_score(social.user(a).interests, social.user(b).interests)
        )
    interest_arr = np.asarray(interest_scores)
    gamma = float(np.percentile(interest_arr, percentile))

    # --- radius: road distances between nearby POI pairs -----------------
    # "the maximum distance a group travels between two POIs": sample a
    # POI and its nearest neighbours' distances.
    poi_distances = []
    for _ in range(max(num_samples // 10, 10)):
        center = pois[int(rng.integers(len(pois)))]
        region = network.pois_within(center, 2.0 * r_max)
        others = [p for p in region if p != center]
        if not others:
            continue
        other = others[int(rng.integers(len(others)))]
        poi_distances.append(network.poi_poi_distance(center, other))
    if not poi_distances:
        poi_distances = [r_min]
    distance_arr = np.asarray(poi_distances)
    # The percentile gives 2r (a pairwise travel distance); halve it.
    radius = float(np.percentile(distance_arr, percentile)) / 2.0
    radius = min(max(radius, r_min), r_max)

    # --- theta: matching scores of users against radius regions -----------
    matching_scores = []
    for _ in range(num_samples):
        center = pois[int(rng.integers(len(pois)))]
        region = network.pois_within(center, radius)
        covered = frozenset().union(
            *(network.poi(p).keywords for p in region)
        )
        uid = users[int(rng.integers(len(users)))]
        matching_scores.append(
            match_score(social.user(uid).interests, covered)
        )
    matching_arr = np.asarray(matching_scores)
    # theta is a feasibility floor: take the *complementary* percentile
    # so that roughly `percentile`% of user-region pairs can satisfy it.
    theta = float(np.percentile(matching_arr, 100.0 - percentile))

    def quartiles(arr: np.ndarray) -> tuple:
        return tuple(round(float(q), 4) for q in np.percentile(arr, [25, 50, 75]))

    return SuggestedParameters(
        gamma=round(gamma, 4),
        theta=round(max(theta, 0.0), 4),
        radius=round(radius, 4),
        interest_quartiles=quartiles(interest_arr),
        matching_quartiles=quartiles(matching_arr),
        poi_distance_quartiles=quartiles(distance_arr),
    )
