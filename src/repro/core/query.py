"""Query and answer types for GP-SSN (Definition 5).

A :class:`GPSSNQuery` bundles the query issuer with the five tunable
parameters; a :class:`GPSSNAnswer` is the returned ``(S, R)`` pair with
its objective value; :class:`QueryStatistics` carries the measurement
counters (CPU time, simulated page accesses, and the per-rule pruning
tallies behind Figures 7(a)-7(d)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from ..exceptions import InvalidParameterError
from .metrics import InterestMetric


@dataclass(frozen=True)
class GPSSNQuery:
    """A GP-SSN query (Definition 5).

    Attributes:
        query_user: the issuer ``u_q``; always a member of the answer set S.
        tau: the group size ``|S|`` (user-specified).
        gamma: pairwise common-interest threshold in the group.
        theta: user-to-POI-set matching threshold.
        radius: the spatial radius ``r``; any two POIs of R are within
            road distance ``2r``.
        metric: the interest-similarity metric for the gamma predicate
            (Eq. 1's dot product by default; cosine/Jaccard/Hamming are
            the paper's future-work extension).
    """

    query_user: int
    tau: int = 5
    gamma: float = 0.5
    theta: float = 0.5
    radius: float = 2.0
    metric: InterestMetric = InterestMetric.DOT

    def __post_init__(self) -> None:
        if self.tau < 1:
            raise InvalidParameterError(f"tau must be >= 1, got {self.tau}")
        if self.gamma < 0:
            raise InvalidParameterError(f"gamma must be >= 0, got {self.gamma}")
        if self.theta < 0:
            raise InvalidParameterError(f"theta must be >= 0, got {self.theta}")
        if self.radius <= 0:
            raise InvalidParameterError(
                f"radius must be > 0, got {self.radius}"
            )
        if not isinstance(self.metric, InterestMetric):
            raise InvalidParameterError(
                f"metric must be an InterestMetric, got {self.metric!r}"
            )


@dataclass
class PruningCounters:
    """Per-rule pruning tallies (the effectiveness metrics of Section 6.2).

    Index-level counters count the *objects under pruned nodes* (that is
    how the paper reports index-level pruning power); object-level
    counters count objects pruned individually after surviving the index
    level.
    """

    # social side
    social_index_pruned: int = 0
    social_object_pruned: int = 0
    social_pruned_by_distance: int = 0
    social_pruned_by_interest: int = 0
    # road side
    road_index_pruned: int = 0
    road_object_pruned: int = 0
    road_pruned_by_distance: int = 0
    road_pruned_by_matching: int = 0
    # totals for normalization
    total_users: int = 0
    total_pois: int = 0
    # pair level (Figure 7(d))
    candidate_pairs_examined: int = 0
    total_possible_pairs: float = 0.0

    def social_index_power(self) -> float:
        """Fraction of users ruled out at the index level."""
        if self.total_users == 0:
            return 0.0
        return self.social_index_pruned / self.total_users

    def social_object_power(self) -> float:
        """Fraction of index-surviving users ruled out at the object level."""
        remaining = self.total_users - self.social_index_pruned
        if remaining <= 0:
            return 0.0
        return self.social_object_pruned / remaining

    def road_index_power(self) -> float:
        if self.total_pois == 0:
            return 0.0
        return self.road_index_pruned / self.total_pois

    def road_object_power(self) -> float:
        remaining = self.total_pois - self.road_index_pruned
        if remaining <= 0:
            return 0.0
        return self.road_object_pruned / remaining

    def pair_pruning_power(self) -> float:
        """Figure 7(d): fraction of user-POI group pairs never examined."""
        if self.total_possible_pairs <= 0:
            return 0.0
        return 1.0 - self.candidate_pairs_examined / self.total_possible_pairs


@dataclass
class QueryStatistics:
    """Measurements of one GP-SSN query execution."""

    cpu_time_sec: float = 0.0
    page_accesses: int = 0
    pruning: PruningCounters = field(default_factory=PruningCounters)
    #: candidate set sizes after the index traversal, before refinement
    candidate_users: int = 0
    candidate_pois: int = 0
    #: user groups actually enumerated during refinement
    groups_refined: int = 0
    #: point-to-point Dijkstra searches run (oracle cache misses) and
    #: searches served from the oracle's cache during this query
    dijkstra_searches: int = 0
    dijkstra_cache_hits: int = 0
    #: wall time of the top-level phases (``traverse`` / ``refine``),
    #: populated only when the processor's recorder has an active tracer
    phase_times: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class GPSSNAnswer:
    """A GP-SSN answer pair ``(S, R)``.

    ``users`` includes the query issuer; ``max_distance`` is the
    minimized objective ``maxdist_RN(S, R)``. ``found`` distinguishes an
    empty result ("no pair satisfies the predicates") from a real answer.
    """

    users: FrozenSet[int]
    pois: FrozenSet[int]
    max_distance: float
    found: bool = True

    @classmethod
    def empty(cls) -> "GPSSNAnswer":
        return cls(
            users=frozenset(), pois=frozenset(),
            max_distance=math.inf, found=False,
        )

    def __post_init__(self) -> None:
        if self.found and not self.users:
            raise InvalidParameterError("a found answer must contain users")
