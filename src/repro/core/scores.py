"""Interest and matching scores with their bounds (Eqs. 1-2, 15, 18).

* ``Interest_Score(u_j, u_k)`` — dot product of interest vectors (Eq. 1).
* ``Match_Score(u_j, R)`` — the total interest mass of ``u_j`` on topics
  covered by the POI set ``R`` (Eq. 2): ``sum_f w_f * chi(f in ∪ o.K)``.
* ``ub_Match_Score(u_j, e_R)`` — the same sum over the keyword *superset*
  of an index entry (Eq. 15); supersets only add indicator terms, so the
  result upper-bounds the true score (Lemma 2's monotonicity).
* ``lb_Match_Score(S, e_R)`` — the max over sample objects of the min
  over users of the score against the sample's keyword *subset* (Eq. 18).

Bit-vector variants evaluate the indicator on hashed vectors; hash
collisions only turn 0-indicators into 1s, so the bit-vector score is
itself an upper bound of the exact-set score — safe wherever an upper
bound is required.
"""

from __future__ import annotations

from typing import AbstractSet, Sequence

import numpy as np

from ..index.bitvector import KeywordBitVector
from ..socialnet.interests import interest_score

__all__ = [
    "interest_score",
    "match_score",
    "match_score_bitvector",
    "min_match_over_users",
]


def match_score(interests: np.ndarray, keywords: AbstractSet[int]) -> float:
    """``Match_Score`` of one user against a keyword set (Eq. 2).

    Args:
        interests: the user's ``d``-dimensional interest vector.
        keywords: keyword/topic ids covered by the POI set (``∪ o.K``).
    """
    total = 0.0
    for f, weight in enumerate(interests):
        if f in keywords:
            total += float(weight)
    return total


def match_score_bitvector(
    interests: np.ndarray, vector: KeywordBitVector
) -> float:
    """Matching score evaluated on a hashed keyword bit vector.

    Because ``might_contain`` has no false negatives, this value is an
    upper bound of :func:`match_score` against the underlying exact set,
    which is what the index-level pruning (Lemma 6) requires.
    """
    total = 0.0
    for f, weight in enumerate(interests):
        if vector.might_contain(f):
            total += float(weight)
    return total


def min_match_over_users(
    user_interest_vectors: Sequence[np.ndarray],
    keywords: AbstractSet[int],
) -> float:
    """``min_{u_j in S} Match_Score(u_j, ·)`` — the inner term of Eq. 18."""
    if not user_interest_vectors:
        return 0.0
    return min(match_score(w, keywords) for w in user_interest_vectors)
