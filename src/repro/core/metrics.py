"""Alternative interest-similarity metrics (the paper's future work).

Section 2 of the paper fixes ``Interest_Score`` to the dot product
(Eq. 1) and explicitly defers "other metrics such as Jaccard similarity
or Hamming distance … (e.g., pruning with lower/upper bounds of these
metrics)" to future work. This module implements that extension: four
interchangeable metrics, each with

* an exact pairwise score ``score(w_j, w_k)``, and
* a sound *upper bound* over an interest-space MBR
  (``ub_over_box(box, anchor)``), which is what the Lemma-8-style
  index-node pruning needs: a node is prunable iff its upper bound
  falls below ``gamma``.

Set metrics (Jaccard, Hamming) operate on the *support* of the interest
vector — the topics whose probability reaches ``binarize_threshold``.

Bound derivations (interest probabilities are non-negative; for a box
``[low, high]`` every user vector ``x`` satisfies ``low <= x <= high``
elementwise, hence ``supp(low) ⊆ supp(x) ⊆ supp(high)``):

* **DOT** — ``x · w <= high · w``.
* **COSINE** — ``cos(x, w) = (x · w) / (|x| |w|) <= (high · w) /
  (|low| |w|)``, clamped to 1; if ``|low| = 0`` the bound is 1.
* **JACCARD** — ``|supp(x) ∩ W| <= |supp(high) ∩ W|`` and
  ``|supp(x) ∪ W| >= |supp(low) ∪ W|``, so their ratio bounds the
  score.
* **HAMMING** similarity ``1 - diff/d`` — a topic is *forced to
  differ* when ``high_f < t`` while ``f ∈ W`` (the box cannot reach the
  threshold) or ``low_f >= t`` while ``f ∉ W``; counting forced
  disagreements lower-bounds ``diff``.
"""

from __future__ import annotations

import enum
from typing import FrozenSet

import numpy as np

from ..exceptions import InvalidParameterError
from ..geometry import MBR


class InterestMetric(enum.Enum):
    """The supported interest-similarity metrics."""

    DOT = "dot"          # the paper's Eq. 1
    COSINE = "cosine"    # Eq. 4's normalized form
    JACCARD = "jaccard"  # on binarized topic supports
    HAMMING = "hamming"  # similarity = 1 - hamming_distance / d


def support(weights: np.ndarray, threshold: float) -> FrozenSet[int]:
    """Topics whose probability reaches ``threshold``."""
    return frozenset(int(f) for f in np.nonzero(weights >= threshold)[0])


class MetricScorer:
    """Pairwise interest scoring plus index-level upper bounds.

    One scorer instance is configured per query; the GP-SSN processor
    consults it wherever the paper's Eq. 1 appears (Lemma 3, Lemma 8,
    Corollaries 1-2, and the group-enumeration compatibility check).
    """

    def __init__(
        self,
        metric: InterestMetric = InterestMetric.DOT,
        binarize_threshold: float = 0.1,
    ) -> None:
        if not isinstance(metric, InterestMetric):
            raise InvalidParameterError(f"unknown metric {metric!r}")
        if not 0.0 < binarize_threshold <= 1.0:
            raise InvalidParameterError(
                "binarize_threshold must be in (0, 1]"
            )
        self.metric = metric
        self.binarize_threshold = binarize_threshold

    # -- exact pairwise scores ------------------------------------------------

    def score(self, w_j: np.ndarray, w_k: np.ndarray) -> float:
        """``Interest_Score`` under the configured metric."""
        w_j = np.asarray(w_j, dtype=float)
        w_k = np.asarray(w_k, dtype=float)
        if w_j.shape != w_k.shape:
            raise InvalidParameterError(
                f"interest shapes differ: {w_j.shape} vs {w_k.shape}"
            )
        if self.metric is InterestMetric.DOT:
            return float(np.dot(w_j, w_k))
        if self.metric is InterestMetric.COSINE:
            nj = float(np.linalg.norm(w_j))
            nk = float(np.linalg.norm(w_k))
            if nj == 0.0 or nk == 0.0:
                return 0.0
            return float(np.dot(w_j, w_k) / (nj * nk))
        t = self.binarize_threshold
        a = support(w_j, t)
        b = support(w_k, t)
        if self.metric is InterestMetric.JACCARD:
            union = a | b
            if not union:
                return 0.0
            return len(a & b) / len(union)
        # HAMMING similarity
        d = w_j.shape[0]
        if d == 0:
            return 0.0
        differing = len(a.symmetric_difference(b))
        return 1.0 - differing / d

    def pairwise_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """All-pairs score matrix for a stack of interest vectors.

        Vectorized for DOT and COSINE; set metrics fall back to a loop
        (they run on the small post-pruning candidate sets only).
        """
        matrix = np.asarray(matrix, dtype=float)
        if self.metric is InterestMetric.DOT:
            return matrix @ matrix.T
        if self.metric is InterestMetric.COSINE:
            norms = np.linalg.norm(matrix, axis=1)
            safe = np.where(norms == 0, 1.0, norms)
            normalized = matrix / safe[:, None]
            normalized[norms == 0] = 0.0
            return normalized @ normalized.T
        n = matrix.shape[0]
        scores = np.zeros((n, n))
        for i in range(n):
            scores[i, i] = self.score(matrix[i], matrix[i])
            for j in range(i + 1, n):
                scores[i, j] = scores[j, i] = self.score(matrix[i], matrix[j])
        return scores

    # -- index-level upper bounds (Lemma 8 generalization) ----------------------

    def ub_over_box(self, box: MBR, anchor: np.ndarray) -> float:
        """Upper bound of ``score(x, anchor)`` over every ``x`` in ``box``."""
        anchor = np.asarray(anchor, dtype=float)
        high = np.asarray(box.high, dtype=float)
        low = np.asarray(box.low, dtype=float)
        if self.metric is InterestMetric.DOT:
            return float(np.dot(high, anchor))
        if self.metric is InterestMetric.COSINE:
            na = float(np.linalg.norm(anchor))
            if na == 0.0:
                return 0.0
            nl = float(np.linalg.norm(low))
            if nl == 0.0:
                return 1.0
            return min(1.0, float(np.dot(high, anchor)) / (nl * na))
        t = self.binarize_threshold
        if self.metric is InterestMetric.JACCARD:
            anchor_support = support(anchor, t)
            max_support = support(high, t)
            min_support = support(low, t)
            intersection_ub = len(max_support & anchor_support)
            union_lb = len(min_support | anchor_support)
            if union_lb == 0:
                return 1.0 if intersection_ub else 0.0
            return min(1.0, intersection_ub / union_lb)
        # HAMMING similarity upper bound. A topic is forced to differ
        # when the anchor has it but the box cannot reach the threshold
        # (high < t), or the anchor lacks it but the whole box has it
        # (low >= t); everything else the box can match.
        d = anchor.shape[0]
        if d == 0:
            return 0.0
        in_anchor = anchor >= t
        forced_diff = int(np.count_nonzero(
            (in_anchor & (high < t)) | (~in_anchor & (low >= t))
        ))
        return 1.0 - forced_diff / d

    def node_prunable(self, box: MBR, anchor: np.ndarray, gamma: float) -> bool:
        """Generalized Lemma 8: prune the node when even the most
        favourable vector in the box cannot reach ``gamma``."""
        return self.ub_over_box(box, anchor) < gamma


#: The paper's default metric (Eq. 1).
DEFAULT_SCORER = MetricScorer(InterestMetric.DOT)
