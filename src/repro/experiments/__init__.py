"""Experiment harness reproducing Section 6's evaluation.

* :mod:`~repro.experiments.harness` — dataset construction, workload
  sampling, and measured query execution;
* :mod:`~repro.experiments.figures` — one driver per paper figure/table
  (Figures 7-11, Table 2, and the Appendix-P parameter sweeps);
* :mod:`~repro.experiments.reporting` — plain-text table rendering for
  benchmark output and EXPERIMENTS.md.
"""

from .harness import (
    DATASET_NAMES,
    ExperimentScale,
    WorkloadResult,
    build_dataset,
    make_processor,
    run_workload,
    sample_query_users,
)
from .reporting import format_table

__all__ = [
    "DATASET_NAMES",
    "ExperimentScale",
    "WorkloadResult",
    "build_dataset",
    "make_processor",
    "run_workload",
    "sample_query_users",
    "format_table",
]
