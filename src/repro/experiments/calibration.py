"""Dataset calibration diagnostics.

The reproducibility of the paper's pruning-power figures hinges on
distributional properties of the generated data: how selective the
``gamma`` thresholds are on pairwise interest scores, how much of the
population sits outside the giant social component, and how feasible
the ``theta`` matching thresholds are for nearby POI regions. This
module measures those properties so the generators can be validated
against the targets DESIGN.md documents (and so a user plugging in real
data can see at a glance how their dataset behaves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.scores import interest_score, match_score
from ..network import SpatialSocialNetwork


@dataclass(frozen=True)
class CalibrationReport:
    """Distributional diagnostics of one spatial-social network."""

    #: fraction of random user pairs with Interest_Score >= gamma
    gamma_pass_rates: Dict[float, float]
    #: fraction of *friend* pairs with Interest_Score >= gamma
    friend_gamma_pass_rates: Dict[float, float]
    #: fraction of users in the largest connected social component
    giant_component_share: float
    #: number of connected social components
    num_components: int
    #: fraction of (user, POI-region) samples with Match_Score >= theta
    theta_pass_rates: Dict[float, float]
    #: median POIs inside a radius-r network ball around a POI
    median_region_size: float


def calibrate(
    network: SpatialSocialNetwork,
    gammas: Sequence[float] = (0.2, 0.3, 0.5, 0.7, 0.9),
    thetas: Sequence[float] = (0.2, 0.3, 0.5, 0.7, 0.9),
    radius: float = 2.0,
    num_samples: int = 400,
    seed: int = 0,
) -> CalibrationReport:
    """Measure the selectivity profile of a network.

    Args:
        network: the network to diagnose.
        gammas / thetas: thresholds to evaluate pass rates for.
        radius: region radius used for the matching-feasibility probe.
        num_samples: sample size for each pass-rate estimate.
        seed: randomness for the sampling.
    """
    rng = np.random.default_rng(seed)
    social = network.social
    user_ids = list(social.user_ids())
    interests = {uid: social.user(uid).interests for uid in user_ids}

    # -- gamma selectivity on random pairs ----------------------------------
    scores = []
    for _ in range(num_samples):
        a = user_ids[int(rng.integers(len(user_ids)))]
        b = user_ids[int(rng.integers(len(user_ids)))]
        if a != b:
            scores.append(interest_score(interests[a], interests[b]))
    scores_arr = np.asarray(scores) if scores else np.zeros(1)
    gamma_pass = {
        g: float((scores_arr >= g).mean()) for g in gammas
    }

    # -- gamma selectivity on friend pairs -----------------------------------
    friend_scores = []
    for uid in user_ids:
        for friend in social.friends(uid):
            if uid < friend:
                friend_scores.append(
                    interest_score(interests[uid], interests[friend])
                )
    friend_arr = np.asarray(friend_scores) if friend_scores else np.zeros(1)
    friend_pass = {
        g: float((friend_arr >= g).mean()) for g in gammas
    }

    # -- component structure ---------------------------------------------------
    seen: set = set()
    component_sizes: List[int] = []
    for uid in user_ids:
        if uid not in seen:
            component = social.connected_component(uid)
            seen.update(component)
            component_sizes.append(len(component))
    giant = max(component_sizes) / len(user_ids) if user_ids else 0.0

    # -- theta feasibility against nearby regions --------------------------------
    poi_ids = network.poi_ids()
    theta_scores = []
    region_sizes = []
    probes = min(num_samples // 4, 100)
    for _ in range(max(probes, 1)):
        seed_poi = poi_ids[int(rng.integers(len(poi_ids)))]
        region = network.pois_within(seed_poi, radius)
        region_sizes.append(len(region))
        covered = frozenset().union(
            *(network.poi(p).keywords for p in region)
        )
        uid = user_ids[int(rng.integers(len(user_ids)))]
        theta_scores.append(match_score(interests[uid], covered))
    theta_arr = np.asarray(theta_scores)
    theta_pass = {
        t: float((theta_arr >= t).mean()) for t in thetas
    }

    return CalibrationReport(
        gamma_pass_rates=gamma_pass,
        friend_gamma_pass_rates=friend_pass,
        giant_component_share=giant,
        num_components=len(component_sizes),
        theta_pass_rates=theta_pass,
        median_region_size=float(np.median(region_sizes)),
    )


def calibration_rows(report: CalibrationReport) -> Tuple[List[str], List[List[object]]]:
    """Flatten a report into a printable table."""
    headers = ["diagnostic", "value"]
    rows: List[List[object]] = []
    for g, rate in sorted(report.gamma_pass_rates.items()):
        rows.append([f"P(Interest_Score >= {g}) random pair", round(rate, 4)])
    for g, rate in sorted(report.friend_gamma_pass_rates.items()):
        rows.append([f"P(Interest_Score >= {g}) friend pair", round(rate, 4)])
    rows.append(["giant component share", round(report.giant_component_share, 4)])
    rows.append(["social components", report.num_components])
    for t, rate in sorted(report.theta_pass_rates.items()):
        rows.append([f"P(Match_Score >= {t}) vs radius region", round(rate, 4)])
    rows.append(["median region size", report.median_region_size])
    return headers, rows
