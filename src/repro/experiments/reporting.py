"""Plain-text table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or 0 < abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table (used by every benchmark driver)."""
    str_rows: List[List[str]] = [[_stringify(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render a GitHub-markdown table (used to build EXPERIMENTS.md)."""
    str_rows = [[_stringify(v) for v in row] for row in rows]
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    out.extend("| " + " | ".join(row) + " |" for row in str_rows)
    return "\n".join(out)
