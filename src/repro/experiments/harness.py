"""Workload construction and measured execution for the experiments.

The paper's experiments (Section 6) run GP-SSN queries over four
datasets — two simulated real spatial-social networks (Bri+Cal, Gow+Col)
and two synthetic ones (UNI, ZIPF) — under the Table-3 parameter grid,
reporting CPU time, I/O (page accesses), and pruning powers. This module
provides the pieces every figure driver shares:

* :func:`build_dataset` — construct any of the four datasets at a given
  :class:`ExperimentScale`;
* :func:`sample_query_users` — draw query issuers (users with at least
  one friend, so the social predicates are non-trivial);
* :func:`run_workload` — execute a query batch against a processor and
  aggregate the measurements.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.algorithm import GPSSNQueryProcessor
from ..core.query import GPSSNQuery, PruningCounters
from ..datagen.realworld import brightkite_california, gowalla_colorado
from ..datagen.synthetic import uni_dataset, zipf_dataset
from ..exceptions import InvalidParameterError
from ..network import SpatialSocialNetwork
from ..obs import MetricsRegistry, Recorder, aggregate_spans

#: The four evaluation datasets of Section 6.1.
DATASET_NAMES: Tuple[str, ...] = ("Bri+Cal", "Gow+Col", "UNI", "ZIPF")


@dataclass(frozen=True)
class ExperimentScale:
    """Structural sizes for one experiment run.

    ``road_vertices``, ``num_pois``, and ``num_users`` are the *actual*
    sizes used (already scaled down from the paper's Table 3 where
    needed); ``max_groups`` caps refinement enumeration (the paper's
    subset-sampling escape hatch) so a single query stays bounded.
    """

    road_vertices: int = 300
    num_pois: int = 100
    num_users: int = 300
    num_keywords: int = 5
    max_groups: Optional[int] = 2000

    def scaled(self, road: float = 1.0, pois: float = 1.0, users: float = 1.0
               ) -> "ExperimentScale":
        return ExperimentScale(
            road_vertices=max(30, int(self.road_vertices * road)),
            num_pois=max(20, int(self.num_pois * pois)),
            num_users=max(20, int(self.num_users * users)),
            num_keywords=self.num_keywords,
            max_groups=self.max_groups,
        )


#: Default laptop-scale sizes (1% of the paper's defaults).
DEFAULT_SCALE = ExperimentScale()


def build_dataset(
    name: str,
    scale: ExperimentScale = DEFAULT_SCALE,
    seed: int = 7,
) -> SpatialSocialNetwork:
    """Construct one of the four Section-6.1 datasets.

    For the simulated real datasets the structural sizes follow Table 2's
    proportions, shrunk to roughly the requested user count.
    """
    if name == "UNI":
        return uni_dataset(
            num_road_vertices=scale.road_vertices,
            num_pois=scale.num_pois,
            num_users=scale.num_users,
            num_keywords=scale.num_keywords,
            seed=seed,
        )
    if name == "ZIPF":
        return zipf_dataset(
            num_road_vertices=scale.road_vertices,
            num_pois=scale.num_pois,
            num_users=scale.num_users,
            num_keywords=scale.num_keywords,
            seed=seed,
        )
    if name == "Bri+Cal":
        return brightkite_california(
            scale=scale.num_users / 40_000.0,
            num_keywords=scale.num_keywords,
            seed=seed,
        )
    if name == "Gow+Col":
        return gowalla_colorado(
            scale=scale.num_users / 40_000.0,
            num_keywords=scale.num_keywords,
            seed=seed,
        )
    raise InvalidParameterError(
        f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
    )


def make_processor(
    network: SpatialSocialNetwork,
    num_road_pivots: int = 5,
    num_social_pivots: int = 5,
    seed: int = 7,
    distance_engine: Optional[str] = None,
) -> GPSSNQueryProcessor:
    """Build the indexed processor with the Table-3 default pivot counts.

    ``distance_engine`` selects the ``dist_RN`` kernel (``plain`` |
    ``csr`` | ``ch``); ``None`` keeps the network's current engine.
    """
    return GPSSNQueryProcessor(
        network,
        num_road_pivots=num_road_pivots,
        num_social_pivots=num_social_pivots,
        seed=seed,
        distance_engine=distance_engine,
    )


def sample_query_users(
    network: SpatialSocialNetwork,
    count: int,
    seed: int = 0,
    min_component: int = 12,
) -> List[int]:
    """Draw ``count`` query issuers from the giant social component.

    Issuers need at least one friend and a connected component of at
    least ``min_component`` users — a group-planning query only makes
    sense for someone with enough social reach to form a group. Falls
    back to any befriended user when the component filter empties the
    pool (tiny test networks).
    """
    rng = np.random.default_rng(seed)
    social = network.social
    component_size: Dict[int, int] = {}
    seen: set = set()
    for uid in social.user_ids():
        if uid in seen:
            continue
        component = social.connected_component(uid)
        for member in component:
            component_size[member] = len(component)
        seen.update(component)
    eligible = [
        uid for uid in social.user_ids()
        if social.friends(uid) and component_size[uid] >= min_component
    ]
    if not eligible:
        eligible = [uid for uid in social.user_ids() if social.friends(uid)]
    if not eligible:
        raise InvalidParameterError("no user has any friends")
    picks = rng.choice(eligible, size=min(count, len(eligible)), replace=False)
    return [int(u) for u in picks]


@dataclass
class WorkloadResult:
    """Aggregated measurements of one query workload."""

    label: str
    num_queries: int = 0
    answers_found: int = 0
    cpu_times: List[float] = field(default_factory=list)
    page_accesses: List[int] = field(default_factory=list)
    pruning: PruningCounters = field(default_factory=PruningCounters)
    groups_refined: int = 0
    #: total seconds per span name over the whole workload (filled when
    #: the workload ran with an active tracer — the default)
    phase_times: Dict[str, float] = field(default_factory=dict)
    #: per-phase candidate funnel (visited/survived/pruned + per-rule
    #: tallies) aggregated over the workload, keyed by phase name —
    #: filled when the workload ran with an active explain recorder
    #: (the default); see :class:`repro.obs.funnel.ExplainRecorder`
    funnel: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: total candidates pruned per rule id, summed over phases
    rule_counts: Dict[str, int] = field(default_factory=dict)
    #: the metrics registry the workload recorded into
    metrics: Optional[MetricsRegistry] = None

    @property
    def mean_cpu(self) -> float:
        return statistics.fmean(self.cpu_times) if self.cpu_times else 0.0

    @property
    def mean_io(self) -> float:
        return statistics.fmean(self.page_accesses) if self.page_accesses else 0.0

    def mean_phase(self, name: str) -> float:
        """Mean seconds per query spent in the spans named ``name``."""
        if not self.num_queries:
            return 0.0
        return self.phase_times.get(name, 0.0) / self.num_queries

    def pruned_by(self, *rules: str) -> int:
        """Total candidates pruned by the given rule ids (all phases)."""
        return sum(self.rule_counts.get(rule, 0) for rule in rules)

    def merge_counters(self, other: PruningCounters) -> None:
        p = self.pruning
        p.social_index_pruned += other.social_index_pruned
        p.social_object_pruned += other.social_object_pruned
        p.social_pruned_by_distance += other.social_pruned_by_distance
        p.social_pruned_by_interest += other.social_pruned_by_interest
        p.road_index_pruned += other.road_index_pruned
        p.road_object_pruned += other.road_object_pruned
        p.road_pruned_by_distance += other.road_pruned_by_distance
        p.road_pruned_by_matching += other.road_pruned_by_matching
        p.total_users += other.total_users
        p.total_pois += other.total_pois
        p.candidate_pairs_examined += other.candidate_pairs_examined
        p.total_possible_pairs += other.total_possible_pairs


def run_workload(
    processor: GPSSNQueryProcessor,
    query_users: Sequence[int],
    tau: int = 5,
    gamma: float = 0.5,
    theta: float = 0.5,
    radius: float = 2.0,
    max_groups: Optional[int] = 2000,
    label: str = "",
    recorder: Optional[Recorder] = None,
    workers: int = 0,
    backend: str = "auto",
) -> WorkloadResult:
    """Run one query per issuer and aggregate the measurements.

    The workload runs under an active span tracer *and* funnel recorder
    by default (pass a ``recorder`` to supply your own, e.g. a plain
    ``Recorder()`` for overhead-free timing runs); the per-phase time
    totals land in :attr:`WorkloadResult.phase_times` keyed by span
    name, and the candidate funnel in :attr:`WorkloadResult.funnel` /
    :attr:`WorkloadResult.rule_counts` keyed by phase and rule id.

    ``workers > 0`` routes the workload through the concurrent
    :class:`~repro.service.executor.BatchQueryExecutor` (``backend``
    picks thread/process; answers are identical to the serial path).
    Per-query statistics still aggregate — they travel back inside each
    outcome — but the per-rule funnel stays empty: worker processes run
    recorder-free, exactly like the serial overhead-free timing mode.
    Answers are identical to the in-process path; enumeration-order work
    counters (e.g. ``candidate_pairs_examined``) can shift by a hair
    because workers run on the canonicalized snapshot restore of the
    network rather than the construction-order original.
    """
    if workers > 0:
        return _run_workload_concurrent(
            processor, query_users, tau=tau, gamma=gamma, theta=theta,
            radius=radius, max_groups=max_groups, label=label,
            recorder=recorder, workers=workers, backend=backend,
        )
    result = WorkloadResult(label=label)
    rec = recorder if recorder is not None else Recorder.explaining()
    result.metrics = rec.metrics
    previous = processor.recorder
    processor.recorder = rec
    try:
        for uq in query_users:
            query = GPSSNQuery(
                query_user=uq, tau=tau, gamma=gamma, theta=theta, radius=radius
            )
            answer, stats = processor.answer(query, max_groups=max_groups)
            result.num_queries += 1
            result.answers_found += int(answer.found)
            result.cpu_times.append(stats.cpu_time_sec)
            result.page_accesses.append(stats.page_accesses)
            result.groups_refined += stats.groups_refined
            result.merge_counters(stats.pruning)
    finally:
        processor.recorder = previous
    result.phase_times = {
        name: entry["total_sec"]
        for name, entry in aggregate_spans(rec.tracer.roots).items()
    }
    if rec.explain.active:
        result.funnel = rec.explain.as_dict()
        result.rule_counts = rec.explain.rule_counts()
    return result


def _run_workload_concurrent(
    processor: GPSSNQueryProcessor,
    query_users: Sequence[int],
    tau: int,
    gamma: float,
    theta: float,
    radius: float,
    max_groups: Optional[int],
    label: str,
    recorder: Optional[Recorder],
    workers: int,
    backend: str,
) -> WorkloadResult:
    """The ``workers > 0`` arm of :func:`run_workload`."""
    from ..service import BatchQueryExecutor

    result = WorkloadResult(label=label)
    rec = recorder if recorder is not None else Recorder()
    result.metrics = rec.metrics
    queries = [
        GPSSNQuery(
            query_user=uq, tau=tau, gamma=gamma, theta=theta, radius=radius
        )
        for uq in query_users
    ]
    with BatchQueryExecutor.from_processor(
        processor, workers=workers, backend=backend, recorder=rec
    ) as executor:
        outcomes = executor.run(queries, max_groups=max_groups)
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"workload query #{outcome.index} failed "
                f"({outcome.status}): {outcome.error}"
            )
        stats = outcome.stats
        result.num_queries += 1
        result.answers_found += int(outcome.answer.found)
        result.cpu_times.append(stats.cpu_time_sec)
        result.page_accesses.append(stats.page_accesses)
        result.groups_refined += stats.groups_refined
        result.merge_counters(stats.pruning)
        for phase, seconds in stats.phase_times.items():
            result.phase_times[phase] = (
                result.phase_times.get(phase, 0.0) + seconds
            )
    return result
