"""Per-figure experiment drivers (Section 6 + Appendix P).

Each function regenerates the rows/series of one paper figure or table
and returns ``(headers, rows)``; the benchmark suite prints them through
:func:`repro.experiments.reporting.format_table` and asserts the
qualitative shape the paper reports.

Structural sizes are supplied by an :class:`ExperimentScale` — all
drivers run the paper's parameter values verbatim and shrink only the
network sizes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


from ..core.algorithm import GPSSNQueryProcessor, PruningToggles
from ..core.baseline import BaselineProcessor
from ..core.query import GPSSNQuery
from ..datagen.realworld import dataset_stats
from .harness import (
    DATASET_NAMES,
    DEFAULT_SCALE,
    ExperimentScale,
    build_dataset,
    make_processor,
    run_workload,
    sample_query_users,
)

Rows = List[List[object]]
Table = Tuple[List[str], Rows]

#: Table-3 sweep values (verbatim from the paper).
TAU_SWEEP = (2, 3, 5, 7, 10)
GAMMA_SWEEP = (0.2, 0.3, 0.5, 0.7, 0.9)
THETA_SWEEP = (0.2, 0.3, 0.5, 0.7, 0.9)
RADIUS_SWEEP = (0.5, 1.0, 2.0, 3.0, 4.0)
PIVOT_SWEEP = (2, 3, 5, 7, 10)
#: Table-3 structural sweeps, expressed as fractions of the default so a
#: scaled run sweeps the same proportions (3K..30K around a 10K default;
#: 10K..50K around a 30K default).
POI_FRACTIONS = (0.3, 0.5, 1.0, 1.5, 3.0)
GRAPH_FRACTIONS = (1.0 / 3, 2.0 / 3, 1.0, 4.0 / 3, 5.0 / 3)
#: Synthetic datasets used for the parameter sweeps (Section 6.3).
SWEEP_DATASETS = ("UNI", "ZIPF")


def _workload(
    processor: GPSSNQueryProcessor,
    network,
    scale: ExperimentScale,
    num_queries: int,
    seed: int,
    **params,
):
    users = sample_query_users(network, num_queries, seed=seed)
    return run_workload(
        processor, users, max_groups=scale.max_groups, **params
    )


# ---------------------------------------------------------------------------
# Table 2 — dataset statistics
# ---------------------------------------------------------------------------


def table2_datasets(
    scale: ExperimentScale = DEFAULT_SCALE, seed: int = 7
) -> Table:
    """Table 2: statistics of the (simulated) real datasets."""
    headers = ["dataset", "|V(G_s)|", "deg(G_s)", "|V(G_r)|", "deg(G_r)"]
    rows: Rows = []
    for name in ("Bri+Cal", "Gow+Col"):
        network = build_dataset(name, scale, seed=seed)
        stats = dataset_stats(name, network)
        rows.append(list(stats.as_row()))
    return headers, rows


# ---------------------------------------------------------------------------
# Figure 7 — pruning powers
# ---------------------------------------------------------------------------


def _pruning_workloads(
    scale: ExperimentScale, num_queries: int, seed: int
) -> Dict[str, object]:
    results = {}
    for name in DATASET_NAMES:
        network = build_dataset(name, scale, seed=seed)
        processor = make_processor(network, seed=seed)
        results[name] = _workload(
            processor, network, scale, num_queries, seed, label=name
        )
    return results


def fig7a_index_object_pruning(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
    workloads: Optional[Dict[str, object]] = None,
) -> Table:
    """Figure 7(a): index-level vs object-level pruning power.

    The four trailing ``n`` columns are absolute prune *counts* from the
    candidate funnel (summed over the workload's queries), split the
    same way the powers are: index-level rules (Lemmas 6-9) vs
    object-level rules (Lemmas 1, 3-5, including the refinement-stage
    object prunes the counters also absorb).
    """
    workloads = workloads or _pruning_workloads(scale, num_queries, seed)
    headers = [
        "dataset",
        "social index", "social object", "social overall",
        "road index", "road object", "road overall",
        "social idx n", "social obj n", "road idx n", "road obj n",
    ]
    rows: Rows = []
    for name in DATASET_NAMES:
        w = workloads[name]
        p = w.pruning
        s_idx, s_obj = p.social_index_power(), p.social_object_power()
        r_idx, r_obj = p.road_index_power(), p.road_object_power()
        rows.append([
            name,
            round(s_idx, 4), round(s_obj, 4),
            round(s_idx + (1 - s_idx) * s_obj, 4),
            round(r_idx, 4), round(r_obj, 4),
            round(r_idx + (1 - r_idx) * r_obj, 4),
            w.pruned_by("idx.social_hops", "idx.social_interest"),
            w.pruned_by(
                "obj.social_hops", "obj.social_interest",
                "refine.social_hops", "refine.corollary2",
            ),
            w.pruned_by("idx.road_matching", "idx.road_distance"),
            w.pruned_by(
                "obj.poi_matching", "obj.poi_distance", "obj.poi_witness",
                "refine.seed_matching",
            ),
        ])
    return headers, rows


def fig7b_user_pruning(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
    workloads: Optional[Dict[str, object]] = None,
) -> Table:
    """Figure 7(b): user pruning power by rule (hop distance vs interest).

    The ``n`` columns are the funnel's absolute prune counts per rule
    family (index + object level combined).
    """
    workloads = workloads or _pruning_workloads(scale, num_queries, seed)
    headers = [
        "dataset", "distance pruning", "interest pruning",
        "distance n", "interest n",
    ]
    rows: Rows = []
    for name in DATASET_NAMES:
        w = workloads[name]
        p = w.pruning
        total = max(p.total_users, 1)
        rows.append([
            name,
            round(p.social_pruned_by_distance / total, 4),
            round(p.social_pruned_by_interest / total, 4),
            w.pruned_by(
                "idx.social_hops", "obj.social_hops", "refine.social_hops"
            ),
            w.pruned_by(
                "idx.social_interest", "obj.social_interest",
                "refine.corollary2",
            ),
        ])
    return headers, rows


def fig7c_poi_pruning(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
    workloads: Optional[Dict[str, object]] = None,
) -> Table:
    """Figure 7(c): POI pruning power by rule (distance vs matching).

    The ``n`` columns are the funnel's absolute prune counts per rule
    family (index + object level combined; the Eq. 5 witness filter is a
    distance rule).
    """
    workloads = workloads or _pruning_workloads(scale, num_queries, seed)
    headers = [
        "dataset", "distance pruning", "matching pruning",
        "distance n", "matching n",
    ]
    rows: Rows = []
    for name in DATASET_NAMES:
        w = workloads[name]
        p = w.pruning
        total = max(p.total_pois, 1)
        rows.append([
            name,
            round(p.road_pruned_by_distance / total, 4),
            round(p.road_pruned_by_matching / total, 4),
            w.pruned_by(
                "idx.road_distance", "obj.poi_distance", "obj.poi_witness"
            ),
            w.pruned_by(
                "idx.road_matching", "obj.poi_matching",
                "refine.seed_matching",
            ),
        ])
    return headers, rows


def fig7d_pair_pruning(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
    workloads: Optional[Dict[str, object]] = None,
) -> Table:
    """Figure 7(d): overall user-POI group pair pruning power.

    The count columns expose the ``refine.pairs`` funnel directly:
    (group, seed) decisions visited vs cut off by the best-so-far
    distance bound (rule ``pair.distance``).
    """
    workloads = workloads or _pruning_workloads(scale, num_queries, seed)
    headers = [
        "dataset", "pair pruning power", "pairs visited", "pairs pruned",
    ]
    rows: Rows = []
    for name in DATASET_NAMES:
        w = workloads[name]
        pairs = w.funnel.get("refine.pairs", {})
        # Formatted as a fixed-point string: the power sits so close to
        # 1 that general-precision float rendering would print "1".
        rows.append([
            name,
            f"{w.pruning.pair_pruning_power():.10f}",
            pairs.get("visited", 0),
            pairs.get("pruned", 0),
        ])
    return headers, rows


def fig7_all(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
) -> Dict[str, Table]:
    """All four Figure-7 panels from one shared workload run."""
    workloads = _pruning_workloads(scale, num_queries, seed)
    return {
        "7a": fig7a_index_object_pruning(scale, num_queries, seed, workloads),
        "7b": fig7b_user_pruning(scale, num_queries, seed, workloads),
        "7c": fig7c_poi_pruning(scale, num_queries, seed, workloads),
        "7d": fig7d_pair_pruning(scale, num_queries, seed, workloads),
    }


# ---------------------------------------------------------------------------
# Figure 8 — GP-SSN vs Baseline
# ---------------------------------------------------------------------------


def fig8_vs_baseline(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 3,
    seed: int = 7,
) -> Table:
    """Figure 8: CPU time and I/O of GP-SSN vs the (extrapolated) baseline."""
    headers = [
        "dataset",
        "GP-SSN CPU (s)", "GP-SSN I/O",
        "Baseline CPU (s, est)", "Baseline I/O (est)",
        "CPU speedup",
    ]
    rows: Rows = []
    for name in DATASET_NAMES:
        network = build_dataset(name, scale, seed=seed)
        processor = make_processor(network, seed=seed)
        result = _workload(processor, network, scale, num_queries, seed, label=name)
        baseline = BaselineProcessor(network)
        uq = sample_query_users(network, 1, seed=seed)[0]
        estimate = baseline.estimate_cost(
            GPSSNQuery(query_user=uq), num_samples=100
        )
        speedup = (
            estimate.estimated_cpu_sec / result.mean_cpu
            if result.mean_cpu > 0 else float("inf")
        )
        rows.append([
            name,
            round(result.mean_cpu, 5), round(result.mean_io, 1),
            estimate.estimated_cpu_sec, estimate.estimated_page_accesses,
            speedup,
        ])
    return headers, rows


# ---------------------------------------------------------------------------
# Figures 9-11 and Appendix-P sweeps
# ---------------------------------------------------------------------------


def _sweep(
    param_name: str,
    values: Sequence[object],
    scale: ExperimentScale,
    num_queries: int,
    seed: int,
    build_scale=None,
    query_kwargs=None,
    processor_kwargs=None,
) -> Table:
    """Shared sweep machinery: one row per (dataset, parameter value)."""
    headers = ["dataset", param_name, "CPU (s)", "I/O", "found"]
    rows: Rows = []
    for name in SWEEP_DATASETS:
        cache: Dict[object, object] = {}
        for value in values:
            run_scale = build_scale(value) if build_scale else scale
            key = (run_scale.road_vertices, run_scale.num_pois, run_scale.num_users)
            if key not in cache:
                network = build_dataset(name, run_scale, seed=seed)
                pkw = processor_kwargs(value) if processor_kwargs else {}
                processor = make_processor(network, seed=seed, **pkw)
                cache[key] = (network, processor)
            elif processor_kwargs:
                network, _ = cache[key]
                processor = make_processor(
                    network, seed=seed, **processor_kwargs(value)
                )
                cache[key] = (network, processor)
            network, processor = cache[key]
            qkw = query_kwargs(value) if query_kwargs else {}
            result = _workload(
                processor, network, run_scale, num_queries, seed, **qkw
            )
            rows.append([
                name, value,
                round(result.mean_cpu, 5), round(result.mean_io, 1),
                f"{result.answers_found}/{result.num_queries}",
            ])
    return headers, rows


def fig9_group_size(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
    taus: Sequence[int] = TAU_SWEEP,
) -> Table:
    """Figure 9: CPU/I/O vs the user group size tau."""
    return _sweep(
        "tau", list(taus), scale, num_queries, seed,
        query_kwargs=lambda tau: {"tau": tau},
    )


def fig10_num_pois(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
    fractions: Sequence[float] = POI_FRACTIONS,
) -> Table:
    """Figure 10: CPU/I/O vs the number of POIs n (3K..30K scaled)."""
    return _sweep(
        "n (fraction of default)", list(fractions), scale, num_queries, seed,
        build_scale=lambda frac: scale.scaled(pois=frac),
    )


def fig11_road_size(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
    fractions: Sequence[float] = GRAPH_FRACTIONS,
) -> Table:
    """Figure 11: CPU/I/O vs road-network size |V(G_r)| (10K..50K scaled)."""
    return _sweep(
        "|V(G_r)| (fraction)", list(fractions), scale, num_queries, seed,
        build_scale=lambda frac: scale.scaled(road=frac),
    )


def appendix_social_size(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
    fractions: Sequence[float] = GRAPH_FRACTIONS,
) -> Table:
    """Appendix: CPU/I/O vs social-network size |V(G_s)| (10K..50K scaled)."""
    return _sweep(
        "|V(G_s)| (fraction)", list(fractions), scale, num_queries, seed,
        build_scale=lambda frac: scale.scaled(users=frac),
    )


def appendix_gamma(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
    gammas: Sequence[float] = GAMMA_SWEEP,
) -> Table:
    """Appendix P: CPU/I/O vs the interest threshold gamma."""
    return _sweep(
        "gamma", list(gammas), scale, num_queries, seed,
        query_kwargs=lambda g: {"gamma": g},
    )


def appendix_theta(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
    thetas: Sequence[float] = THETA_SWEEP,
) -> Table:
    """Appendix P: CPU/I/O vs the matching threshold theta."""
    return _sweep(
        "theta", list(thetas), scale, num_queries, seed,
        query_kwargs=lambda t: {"theta": t},
    )


def appendix_radius(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 5,
    seed: int = 7,
    radii: Sequence[float] = RADIUS_SWEEP,
) -> Table:
    """Appendix P: CPU/I/O vs the spatial radius r."""
    return _sweep(
        "r", list(radii), scale, num_queries, seed,
        query_kwargs=lambda r: {"radius": r},
    )


def appendix_pivots(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 3,
    seed: int = 7,
    pivot_counts: Sequence[int] = PIVOT_SWEEP,
) -> Table:
    """Appendix P: CPU/I/O vs the number of pivots l = h."""
    return _sweep(
        "pivots", list(pivot_counts), scale, num_queries, seed,
        processor_kwargs=lambda p: {
            "num_road_pivots": p, "num_social_pivots": p,
        },
    )


# ---------------------------------------------------------------------------
# Ablation — contribution of each pruning rule
# ---------------------------------------------------------------------------


def ablation_pruning(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 3,
    seed: int = 7,
) -> Table:
    """Design-choice ablation: disable one pruning family at a time.

    Not a paper figure; quantifies the contribution of each rule that
    DESIGN.md calls out, on the UNI dataset. Answers are invariant (the
    suite asserts this); only cost moves.
    """
    variants = [
        ("all rules", PruningToggles()),
        ("no interest pruning", PruningToggles(interest=False)),
        ("no social distance", PruningToggles(social_distance=False)),
        ("no matching pruning", PruningToggles(matching=False)),
        ("no road distance", PruningToggles(road_distance=False)),
    ]
    headers = ["variant", "CPU (s)", "I/O", "candidate users", "candidate POIs"]
    rows: Rows = []
    network = build_dataset("UNI", scale, seed=seed)
    users = sample_query_users(network, num_queries, seed=seed)
    for label, toggles in variants:
        processor = GPSSNQueryProcessor(network, seed=seed, toggles=toggles)
        cand_users = cand_pois = 0
        result = run_workload(
            processor, users, max_groups=scale.max_groups, label=label
        )
        for uq in users[:1]:
            _, stats = processor.answer(
                GPSSNQuery(query_user=uq), max_groups=scale.max_groups
            )
            cand_users, cand_pois = stats.candidate_users, stats.candidate_pois
        rows.append([
            label, round(result.mean_cpu, 5), round(result.mean_io, 1),
            cand_users, cand_pois,
        ])
    return headers, rows


# ---------------------------------------------------------------------------
# Per-phase timing breakdown (observability layer; not a paper figure)
# ---------------------------------------------------------------------------


def phase_breakdown(
    scale: ExperimentScale = DEFAULT_SCALE,
    num_queries: int = 3,
    seed: int = 7,
) -> Table:
    """Mean per-query wall time of every pipeline phase, per dataset.

    The span tracer's per-phase split of ``GPSSNQueryProcessor.answer``:
    the two index-traversal sub-phases (social pruning by Lemmas 3-4/8-9
    and the road sweep by Lemmas 1/5/6/7), the exact witness filter
    (Eq. 5), and the three refinement sub-phases (Corollary 1-2
    fixpoint, seed recheck, group enumeration). This is the measured
    baseline a perf-focused change is judged against.
    """
    phases = [
        ("traverse", "traverse (ms)"),
        ("traverse.social_pruning", "social prune"),
        ("traverse.road_sweep", "road sweep"),
        ("traverse.witness_filter", "witness"),
        ("refine", "refine (ms)"),
        ("refine.corollary2", "corollary2"),
        ("refine.seed_filter", "seed filter"),
        ("refine.enumerate", "enumerate"),
    ]
    headers = ["dataset", "cpu (ms)"] + [label for _, label in phases]
    rows: Rows = []
    for name in DATASET_NAMES:
        network = build_dataset(name, scale, seed=seed)
        processor = make_processor(network)
        result = _workload(processor, network, scale, num_queries, seed)
        row: List[object] = [name, round(result.mean_cpu * 1000, 3)]
        row.extend(
            round(result.mean_phase(span_name) * 1000, 3)
            for span_name, _ in phases
        )
        rows.append(row)
    return headers, rows
