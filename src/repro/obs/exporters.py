"""Exporters for recorded traces and metrics.

Three output shapes cover the consumers we have:

* :func:`write_trace_jsonl` / :func:`spans_to_jsonl` — one JSON object
  per span (id/parent links encode the tree), for offline analysis and
  the ``gpssn query --trace`` flag;
* :func:`prometheus_text` — the Prometheus text exposition format for a
  :class:`~repro.obs.registry.MetricsRegistry` (``--metrics-out``);
* :func:`phase_table` — a human-readable per-phase timing table, shared
  by the CLI and the experiment harness.

:func:`format_stats_line` is the one place the CLI's
``[cpu … ms, … page accesses, …]`` summary is built, so interactive
output and harness reports cannot drift apart.
"""

from __future__ import annotations

import json
import re
from typing import IO, Dict, List, Optional, Sequence, Union

from .delta import split_worker_metric
from .registry import MetricsRegistry
from .tracer import Span, aggregate_spans

__all__ = [
    "explain_to_json",
    "format_stats_line",
    "phase_table",
    "prometheus_text",
    "spans_to_jsonl",
    "write_trace_jsonl",
]


def format_stats_line(stats) -> str:
    """The one-line query summary printed after every CLI query."""
    return (
        f"[cpu {stats.cpu_time_sec * 1000:.1f} ms, "
        f"{stats.page_accesses} page accesses, "
        f"{stats.groups_refined} groups refined]"
    )


# ---------------------------------------------------------------------------
# JSON-lines trace dump
# ---------------------------------------------------------------------------


def spans_to_jsonl(roots: Sequence[Span]) -> List[str]:
    """Serialize a span forest to JSON lines (parents before children).

    Each line carries ``id``, ``parent`` (``None`` for roots), ``name``,
    ``start`` (seconds, relative to the earliest root so traces are
    stable across runs), ``duration`` (seconds), and any attributes.
    """
    lines: List[str] = []
    if not roots:
        return lines
    epoch = min(root.start for root in roots)
    next_id = 0

    def emit(span: Span, parent_id: Optional[int]) -> None:
        nonlocal next_id
        span_id = next_id
        next_id += 1
        record: Dict[str, object] = {
            "id": span_id,
            "parent": parent_id,
            "name": span.name,
            "start": round(span.start - epoch, 9),
            "duration": round(span.duration, 9),
        }
        if span.attributes:
            record["attrs"] = span.attributes
        lines.append(json.dumps(record))
        for child in span.children:
            emit(child, span_id)

    for root in roots:
        emit(root, None)
    return lines


def write_trace_jsonl(roots: Sequence[Span], out: Union[str, IO[str]]) -> int:
    """Write the span forest to ``out`` (path or file); returns span count."""
    lines = spans_to_jsonl(roots)
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(out, "write"):
        out.write(text)  # type: ignore[union-attr]
    else:
        with open(out, "w", encoding="utf-8") as fp:
            fp.write(text)
    return len(lines)


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "gpssn_" + _NAME_RE.sub("_", name)


# Prometheus label *values* may hold any UTF-8 but backslash, double
# quote, and newline must be escaped in the text format; the same
# permissive-input stance as _prom_name takes for metric names.
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _prom_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in str(value))


#: Metric-name prefixes -> HELP text; matched longest-prefix-first, with
#: a generic fallback so every exported family carries a HELP line.
METRIC_HELP = {
    "query.": "Per-query measurement of the GP-SSN pipeline",
    "pruning.": "Pruning tally absorbed from QueryStatistics",
    "phase.": "Per-phase wall time in seconds",
    "dijkstra.": "Distance-oracle Dijkstra statistics",
    "dist_engine.": "Distance-engine internal statistics",
    "traverse.": "Algorithm-2 traversal statistics",
    "explain.": "Pruning-funnel (EXPLAIN ANALYZE) statistics",
    "service.": "Query service (batch executor and serve daemon) statistics",
    "http.": "gpssn serve HTTP request statistics",
    "snapshot.": "Frozen-snapshot (memmap arena) attach statistics",
    "process.": "Process-level resource gauges",
    "obs.": "Observability-plane internals (delta shipping, span drops)",
}
_DEFAULT_HELP = "GP-SSN metric"


def _prom_help(name: str) -> str:
    best = _DEFAULT_HELP
    best_len = -1
    for prefix, text in METRIC_HELP.items():
        if name.startswith(prefix) and len(prefix) > best_len:
            best = text
            best_len = len(prefix)
    return best


def prometheus_text(
    registry: MetricsRegistry, explain=None, uptime_sec: Optional[float] = None
) -> str:
    """Prometheus text exposition of a registry (or registry snapshot).

    Counters and gauges map 1:1; each histogram becomes ``_count`` /
    ``_sum`` plus ``quantile`` gauges for p50/p95/p99 and a ``_max``
    gauge. Rolling-window histograms export their quantiles over the
    window while ``_count``/``_sum`` stay lifetime-monotone (the shape a
    scraper's delta math needs). Every family gets ``# HELP`` and
    ``# TYPE`` headers. Passing an active
    :class:`~repro.obs.funnel.ExplainRecorder` appends the per-rule
    prune counters with ``phase``/``rule`` labels; ``uptime_sec`` adds
    the conventional ``process_uptime_seconds`` gauge.

    ``registry`` may be a live :class:`MetricsRegistry` or the frozen
    :class:`~repro.obs.registry.MetricsSnapshot` a daemon takes per
    scrape — long-lived services should pass the snapshot so one
    exposition never mixes two moments in time.
    """
    out: List[str] = []

    def header(prom: str, name: str, kind: str) -> None:
        out.append(f"# HELP {prom} {_prom_help(name)}")
        out.append(f"# TYPE {prom} {kind}")

    def split_labelled(names) -> tuple:
        """Partition registry names into plain names and per-worker
        families (``metric -> [(label, name)]``, both levels sorted) so
        every ``gpssn_worker_*`` family renders as one contiguous block
        with a single HELP/TYPE header."""
        plain: List[str] = []
        families: Dict[str, List[tuple]] = {}
        for name in sorted(names):
            parts = split_worker_metric(name)
            if parts is None:
                plain.append(name)
            else:
                metric, label = parts
                families.setdefault(metric, []).append((label, name))
        for series in families.values():
            series.sort()
        return plain, families

    def worker_header(metric: str, kind: str) -> str:
        prom = "gpssn_worker_" + _NAME_RE.sub("_", metric)
        out.append(f"# HELP {prom} {_prom_help(metric)} (per worker)")
        out.append(f"# TYPE {prom} {kind}")
        return prom

    if uptime_sec is not None:
        out.append(
            "# HELP process_uptime_seconds Seconds since service start"
        )
        out.append("# TYPE process_uptime_seconds gauge")
        out.append(f"process_uptime_seconds {float(uptime_sec):g}")
    plain_counters, worker_counters = split_labelled(registry.counters)
    for name in plain_counters:
        prom = _prom_name(name)
        header(prom, name, "counter")
        out.append(f"{prom} {registry.counters[name]:g}")
    for metric in sorted(worker_counters):
        prom = worker_header(metric, "counter")
        for label, name in worker_counters[metric]:
            out.append(
                f'{prom}{{worker="{_prom_label_value(label)}"}} '
                f"{registry.counters[name]:g}"
            )
    plain_gauges, worker_gauges = split_labelled(registry.gauges)
    for name in plain_gauges:
        prom = _prom_name(name)
        header(prom, name, "gauge")
        out.append(f"{prom} {registry.gauges[name]:g}")
    for metric in sorted(worker_gauges):
        prom = worker_header(metric, "gauge")
        for label, name in worker_gauges[metric]:
            out.append(
                f'{prom}{{worker="{_prom_label_value(label)}"}} '
                f"{registry.gauges[name]:g}"
            )
    plain_hists, worker_hists = split_labelled(registry.histograms)
    for name in plain_hists:
        hist = registry.histograms[name]
        prom = _prom_name(name)
        header(prom, name, "summary")
        out.append(f'{prom}{{quantile="0.5"}} {hist.p50:g}')
        out.append(f'{prom}{{quantile="0.95"}} {hist.p95:g}')
        out.append(f'{prom}{{quantile="0.99"}} {hist.p99:g}')
        out.append(f"{prom}_count {hist.count}")
        out.append(f"{prom}_sum {hist.sum:g}")
        header(f"{prom}_max", name, "gauge")
        out.append(f"{prom}_max {hist.max:g}")
    for metric in sorted(worker_hists):
        prom = worker_header(metric, "summary")
        for label, name in worker_hists[metric]:
            hist = registry.histograms[name]
            worker = f'worker="{_prom_label_value(label)}"'
            out.append(f'{prom}{{{worker},quantile="0.5"}} {hist.p50:g}')
            out.append(f'{prom}{{{worker},quantile="0.95"}} {hist.p95:g}')
            out.append(f'{prom}{{{worker},quantile="0.99"}} {hist.p99:g}')
            out.append(f"{prom}_count{{{worker}}} {hist.count}")
            out.append(f"{prom}_sum{{{worker}}} {hist.sum:g}")
    for name in sorted(getattr(registry, "windows", {})):
        window = registry.windows[name]
        stats = window.snapshot() if hasattr(window, "snapshot") else window
        prom = _prom_name(name)
        header(prom, name, "summary")
        out.append(f'{prom}{{quantile="0.5"}} {stats.p50:g}')
        out.append(f'{prom}{{quantile="0.95"}} {stats.p95:g}')
        out.append(f'{prom}{{quantile="0.99"}} {stats.p99:g}')
        out.append(f"{prom}_count {stats.total_count}")
        out.append(f"{prom}_sum {stats.total_sum:g}")
        header(f"{prom}_window_seconds", name, "gauge")
        out.append(f"{prom}_window_seconds {stats.window_sec:g}")
    if explain is not None and getattr(explain, "active", False):
        prom = "gpssn_explain_pruned_total"
        out.append(f"# HELP {prom} Candidates pruned per explain rule")
        out.append(f"# TYPE {prom} counter")
        for funnel in explain.iter_phases():
            for rule in sorted(funnel.rules):
                out.append(
                    f'{prom}{{phase="{_prom_label_value(funnel.name)}"'
                    f',rule="{_prom_label_value(rule)}"}} '
                    f"{funnel.rules[rule].pruned}"
                )
    return "\n".join(out) + ("\n" if out else "")


# ---------------------------------------------------------------------------
# Explain (pruning funnel) JSON export
# ---------------------------------------------------------------------------


def explain_to_json(explain, stats=None, indent: Optional[int] = 2) -> str:
    """Serialize a recorded pruning funnel as a JSON document.

    The payload carries a ``schema`` tag, the per-phase funnels (with
    margin summaries), per-rule totals across phases, and the registry
    metadata (lemma/figure/margin unit) of every referenced rule.
    ``stats`` optionally embeds the query's cost summary.
    """
    from .explain import rule_info

    phases = explain.as_dict()
    referenced = sorted({
        rule for funnel in phases.values() for rule in funnel["rules"]
    })
    payload: Dict[str, object] = {
        "schema": "gpssn.explain/1",
        "phases": phases,
        "rule_totals": explain.rule_counts(),
        "rules": {rule: rule_info(rule) for rule in referenced},
    }
    if stats is not None:
        payload["stats"] = {
            "cpu_time_sec": stats.cpu_time_sec,
            "page_accesses": stats.page_accesses,
            "candidate_users": stats.candidate_users,
            "candidate_pois": stats.candidate_pois,
            "groups_refined": stats.groups_refined,
        }
    return json.dumps(payload, indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# Per-phase timing table
# ---------------------------------------------------------------------------


def phase_table(
    roots: Sequence[Span],
    title: str = "Per-phase timing",
    relative_to: str = "query",
) -> str:
    """Render the span forest as an aggregated per-phase table.

    One row per span name with call count, total/mean milliseconds, and
    the share of the total ``relative_to`` span time (the per-query root
    by convention), sorted by descending total.
    """
    # Imported here, not at module top: the processor imports this
    # package, and ``repro.experiments`` imports the processor — the
    # cycle only resolves after both modules finish loading.
    from ..experiments.reporting import format_table

    stats = aggregate_spans(roots, relative_to=relative_to)
    headers = ["phase", "calls", "total (ms)", "mean (ms)", "max (ms)", "share"]
    rows = []
    ordered = sorted(
        stats.items(), key=lambda item: item[1]["total_sec"], reverse=True
    )
    for name, entry in ordered:
        share = entry.get("share")
        rows.append([
            name,
            int(entry["count"]),
            round(entry["total_sec"] * 1000, 3),
            round(entry["mean_sec"] * 1000, 3),
            round(entry["max_sec"] * 1000, 3),
            f"{share:.1%}" if share is not None else "-",
        ])
    return format_table(headers, rows, title=title)
