"""Serializable telemetry deltas shipped from workers to the parent.

The batch executor's thread and process workers each own a *private*
:class:`~repro.obs.registry.Recorder`: counters, histograms, and the
pruning funnel accumulate in the worker and — before this module —
died with the shard (``_drain_worker_tracer`` silently discarded
everything). A :class:`MetricsDelta` closes that gap: after each shard
(or daemon request) the worker *captures* its recorder — snapshot the
registry and funnel, then reset them — and piggybacks the plain-data
delta on the result envelope. Captures are therefore **disjoint**:
merging deltas is pure summation, and applying them to the parent's
long-lived :class:`~repro.obs.registry.MetricsRegistry` reproduces
exactly the counts a serial run would have recorded directly.

Shapes:

* :class:`HistogramSketch` — the wire form of a
  :class:`~repro.obs.registry.Histogram`: exact ``count``/``sum``/
  ``max`` plus a capped sample list for percentile estimation. Merge
  keeps the exact fields exact; samples concatenate and are
  deterministically thinned above the cap (merge is associative in the
  exact fields always, and in the samples whenever the cap is not hit).
* ``funnel`` — one dict per explain phase carrying
  ``visited``/``survived`` and per-rule prune tallies with margin
  sketch fields, absorbable by
  :meth:`~repro.obs.funnel.ExplainRecorder.absorb`.
* ``trace`` — at most one sampled span forest (JSONL lines, bounded by
  :data:`MAX_TRACE_SPANS`) keyed by the originating request id, for the
  daemon's end-to-end ``/trace/<id>`` merge.

Everything here is plain data (dataclasses of dicts/lists/floats), so a
delta pickles across the process-pool boundary and could equally ship
as JSON.

Application is two-fold: every counter/gauge/histogram lands once under
its own name (the aggregate the funnel dashboards and regression gates
read — identical across serial/thread/process backends) and once under
``worker.<label>.<name>`` (the per-worker series ``/status`` renders
and the Prometheus exporter exposes as ``gpssn_worker_*{worker="..."}``
families).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .funnel import ExplainRecorder
from .registry import Histogram, MetricsRegistry, Recorder

__all__ = [
    "DEFAULT_SKETCH_SAMPLES",
    "HistogramSketch",
    "MAX_TRACE_SPANS",
    "MetricsDelta",
    "WORKER_PREFIX",
    "split_worker_metric",
]

#: Per-sketch sample cap on the wire. Smaller than the registry's
#: reservoir (4096): a delta describes one chunk of work, and its
#: samples only refine percentiles, never the exact count/sum/max.
DEFAULT_SKETCH_SAMPLES = 256

#: Hard ceiling on span-forest lines one delta may carry. ``spans_to_
#: jsonl`` emits parents before children, so a prefix is still a valid
#: forest; anything past the cap is counted as dropped, never silent.
MAX_TRACE_SPANS = 512

#: Registry-name prefix encoding the ``worker`` label. The exporter and
#: dashboard treat ``worker.<label>.<metric>`` as a labelled series of
#: ``<metric>``; keeping the label *outside* the metric name means the
#: unlabelled aggregates (``pruning.*`` etc.) never double-count.
WORKER_PREFIX = "worker."


def split_worker_metric(name: str) -> Optional[tuple]:
    """``("<metric>", "<label>")`` for ``worker.<label>.<metric>`` names,
    else ``None``."""
    if not name.startswith(WORKER_PREFIX):
        return None
    label, _, metric = name[len(WORKER_PREFIX):].partition(".")
    if not label or not metric:
        return None
    return metric, label


def _thin(samples: List[float], cap: int) -> List[float]:
    """Deterministic even-stride downsample to at most ``cap`` values."""
    n = len(samples)
    if n <= cap:
        return list(samples)
    if cap == 1:
        return [samples[0]]
    step = (n - 1) / (cap - 1)
    return [samples[round(i * step)] for i in range(cap)]


@dataclass
class HistogramSketch:
    """The wire form of one histogram: exact moments + capped samples."""

    count: int = 0
    sum: float = 0.0
    max: float = 0.0
    samples: List[float] = field(default_factory=list)

    @classmethod
    def from_histogram(
        cls, hist: Histogram, cap: int = DEFAULT_SKETCH_SAMPLES
    ) -> "HistogramSketch":
        return cls(
            count=hist.count,
            sum=hist.sum,
            max=hist.max,
            samples=_thin(hist.values, cap),
        )

    def merge(self, other: "HistogramSketch") -> "HistogramSketch":
        """A new sketch describing the union of both observation sets."""
        if not other.count:
            return HistogramSketch(
                self.count, self.sum, self.max, list(self.samples)
            )
        if not self.count:
            return HistogramSketch(
                other.count, other.sum, other.max, list(other.samples)
            )
        return HistogramSketch(
            count=self.count + other.count,
            sum=self.sum + other.sum,
            max=max(self.max, other.max),
            samples=_thin(
                self.samples + other.samples, DEFAULT_SKETCH_SAMPLES
            ),
        )

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained samples."""
        import math

        ordered = sorted(self.samples)
        if not ordered:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]


def _funnel_doc(explain) -> Dict[str, dict]:
    """Plain-data image of an explain recorder's phase funnels."""
    doc: Dict[str, dict] = {}
    for funnel in explain.iter_phases():
        rules: Dict[str, dict] = {}
        for rule, stats in funnel.rules.items():
            entry: Dict[str, object] = {"pruned": stats.pruned}
            margins = stats.margins
            if margins.count:
                entry["margin_count"] = margins.count
                entry["margin_sum"] = margins.sum
                entry["margin_max"] = margins.max
                entry["margins"] = _thin(
                    margins.values, DEFAULT_SKETCH_SAMPLES
                )
            rules[rule] = entry
        doc[funnel.name] = {
            "visited": funnel.visited,
            "survived": funnel.survived,
            "rules": rules,
        }
    return doc


@dataclass
class MetricsDelta:
    """One worker's telemetry since its previous capture (plain data)."""

    worker: Optional[str] = None
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramSketch] = field(default_factory=dict)
    #: phase -> {visited, survived, rules: {rule: {pruned, margin_*}}}
    funnel: Dict[str, dict] = field(default_factory=dict)
    #: At most one sampled trace: {"request_id", "spans", "funnel",
    #: "rule_counts", "shard_sec"} (see executor._run_traced_items).
    trace: Optional[dict] = None

    @classmethod
    def capture(
        cls,
        recorder: Recorder,
        worker: Optional[str] = None,
        trace: Optional[dict] = None,
    ) -> "MetricsDelta":
        """Capture-and-reset ``recorder``'s registry + funnel.

        After this returns, the recorder is empty again, so successive
        captures are disjoint and their merge/apply is exact summation.
        The funnel is read from ``recorder.explain`` when active and
        cleared the same way.
        """
        counters, gauges, histograms = recorder.metrics.drain()
        funnel: Dict[str, dict] = {}
        explain = recorder.explain
        if getattr(explain, "active", False):
            funnel = _funnel_doc(explain)
            explain.clear()
        return cls(
            worker=worker,
            counters=counters,
            gauges=gauges,
            histograms={
                name: HistogramSketch.from_histogram(hist)
                for name, hist in histograms.items()
            },
            funnel=funnel,
            trace=trace,
        )

    @property
    def empty(self) -> bool:
        return not (
            self.counters or self.gauges or self.histograms
            or self.funnel or self.trace
        )

    def merge(self, other: "MetricsDelta") -> "MetricsDelta":
        """A new delta equal to both inputs' work combined.

        Counter merge is addition, gauge merge is last-writer-wins
        (``other``), histogram merge is :meth:`HistogramSketch.merge`,
        funnel merge sums tallies; at most one trace survives (the
        first — traces are head-sampled, not aggregated). Associative
        except for gauge ordering and sample thinning past the cap.
        """
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0.0) + value
        gauges = dict(self.gauges)
        gauges.update(other.gauges)
        histograms = dict(self.histograms)
        for name, sketch in other.histograms.items():
            mine = histograms.get(name)
            histograms[name] = sketch if mine is None else mine.merge(sketch)
        funnel = _merge_funnels(self.funnel, other.funnel)
        return MetricsDelta(
            worker=self.worker if self.worker == other.worker else None,
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            funnel=funnel,
            trace=self.trace if self.trace is not None else other.trace,
        )

    def apply(
        self,
        registry: MetricsRegistry,
        explain=None,
        labelled: bool = True,
    ) -> None:
        """Fold this delta into a parent registry (and funnel recorder).

        Every metric lands under its own name — the aggregate that must
        match a serial run exactly — and, when ``labelled`` and the
        delta carries a worker label, again under
        ``worker.<label>.<name>`` for the per-worker plane. ``explain``
        (an :class:`~repro.obs.funnel.ExplainRecorder` or compatible
        ``absorb`` target) receives the funnel delta.
        """
        label = self.worker if labelled else None
        for name, value in self.counters.items():
            registry.inc(name, value)
            if label is not None:
                registry.inc(f"{WORKER_PREFIX}{label}.{name}", value)
        for name, value in self.gauges.items():
            registry.set_gauge(name, value)
            if label is not None:
                registry.set_gauge(f"{WORKER_PREFIX}{label}.{name}", value)
        for name, sketch in self.histograms.items():
            registry.absorb_histogram(name, sketch)
            if label is not None:
                registry.absorb_histogram(
                    f"{WORKER_PREFIX}{label}.{name}", sketch
                )
        if explain is not None and self.funnel:
            explain.absorb(self.funnel)

    def to_explain(self) -> ExplainRecorder:
        """A standalone funnel recorder holding this delta's funnel."""
        explain = ExplainRecorder()
        explain.absorb(self.funnel)
        return explain


def _merge_funnels(
    a: Dict[str, dict], b: Dict[str, dict]
) -> Dict[str, dict]:
    if not a:
        return {k: dict(v) for k, v in b.items()}
    if not b:
        return {k: dict(v) for k, v in a.items()}
    merged: Dict[str, dict] = {}
    for phase in list(a) + [p for p in b if p not in a]:
        pa, pb = a.get(phase), b.get(phase)
        if pa is None or pb is None:
            merged[phase] = dict(pa or pb)
            continue
        rules: Dict[str, dict] = {}
        for rule in list(pa["rules"]) + [
            r for r in pb["rules"] if r not in pa["rules"]
        ]:
            ra, rb = pa["rules"].get(rule), pb["rules"].get(rule)
            if ra is None or rb is None:
                rules[rule] = dict(ra or rb)
                continue
            entry: Dict[str, object] = {
                "pruned": ra["pruned"] + rb["pruned"]
            }
            count = ra.get("margin_count", 0) + rb.get("margin_count", 0)
            if count:
                entry["margin_count"] = count
                entry["margin_sum"] = (
                    ra.get("margin_sum", 0.0) + rb.get("margin_sum", 0.0)
                )
                entry["margin_max"] = max(
                    ra.get("margin_max", 0.0), rb.get("margin_max", 0.0)
                )
                entry["margins"] = _thin(
                    list(ra.get("margins", ())) + list(rb.get("margins", ())),
                    DEFAULT_SKETCH_SAMPLES,
                )
            rules[rule] = entry
        merged[phase] = {
            "visited": pa["visited"] + pb["visited"],
            "survived": pa["survived"] + pb["survived"],
            "rules": rules,
        }
    return merged
