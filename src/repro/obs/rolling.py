"""Rolling-window histograms for long-lived services.

The plain :class:`~repro.obs.registry.Histogram` summarizes *everything
ever observed* — the right shape for a one-shot CLI run or a benchmark,
and exactly the wrong shape for a daemon: after a week of traffic its
p95 is frozen by history and a latency regression today barely moves
it. :class:`RollingHistogram` keeps the last ``window_sec`` seconds of
observations instead, so the p50/p95/p99 a scraper reads from
``/metrics`` describe *current* behaviour.

Implementation: a deque of ``(timestamp, value)`` pairs, pruned lazily
from the left on observe and on read. Memory is bounded two ways — by
time (expired points are dropped) and by ``max_samples`` (under
sustained load beyond the cap the *oldest* in-window points are shed
first, biasing the window toward the most recent traffic, which is the
point of a rolling view). ``total_count`` / ``total_sum`` stay monotone
over the full lifetime so scrape deltas keep working even as the window
turns over.

Thread-safe: every mutation and every read snapshot runs under one
lock. Reads are O(n log n) in the window size (a sort per scrape) —
scrapes are rare and windows are small, observes are the hot side and
stay O(1) amortized.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Tuple

__all__ = ["RollingHistogram", "WindowStats"]


@dataclass(frozen=True)
class WindowStats:
    """A consistent point-in-time summary of one rolling window.

    ``count``/``sum``/quantiles describe the observations currently in
    the window; ``total_count``/``total_sum`` are monotone over the
    histogram's lifetime (the scrape-delta path).
    """

    window_sec: float
    count: int
    sum: float
    p50: float
    p95: float
    p99: float
    max: float
    total_count: int
    total_sum: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class RollingHistogram:
    """Observations with a time horizon; see the module docstring."""

    __slots__ = (
        "window_sec", "max_samples", "_points", "_total_count",
        "_total_sum", "_clock", "_lock",
    )

    DEFAULT_WINDOW_SEC = 300.0
    DEFAULT_MAX_SAMPLES = 4096

    def __init__(
        self,
        window_sec: float = DEFAULT_WINDOW_SEC,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_sec <= 0:
            raise ValueError(f"window_sec must be > 0, got {window_sec}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.window_sec = float(window_sec)
        self.max_samples = max_samples
        self._points: Deque[Tuple[float, float]] = deque()
        self._total_count = 0
        self._total_sum = 0.0
        self._clock = clock
        self._lock = threading.Lock()

    def _prune(self, now: float) -> None:
        horizon = now - self.window_sec
        points = self._points
        while points and points[0][0] < horizon:
            points.popleft()
        while len(points) > self.max_samples:
            points.popleft()

    def observe(self, value: float) -> None:
        value = float(value)
        now = self._clock()
        with self._lock:
            self._total_count += 1
            self._total_sum += value
            self._points.append((now, value))
            self._prune(now)

    @property
    def total_count(self) -> int:
        with self._lock:
            return self._total_count

    @property
    def total_sum(self) -> float:
        with self._lock:
            return self._total_sum

    def snapshot(self) -> WindowStats:
        """Summarize the current window (one consistent read)."""
        with self._lock:
            self._prune(self._clock())
            values = sorted(v for _, v in self._points)
            total_count = self._total_count
            total_sum = self._total_sum
        count = len(values)

        def rank(p: float) -> float:
            if not values:
                return 0.0
            position = max(1, math.ceil(p / 100.0 * count))
            return values[min(position, count) - 1]

        return WindowStats(
            window_sec=self.window_sec,
            count=count,
            sum=float(sum(values)),
            p50=rank(50.0),
            p95=rank(95.0),
            p99=rank(99.0),
            max=values[-1] if values else 0.0,
            total_count=total_count,
            total_sum=total_sum,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.snapshot()
        return (
            f"RollingHistogram(window={self.window_sec:g}s, "
            f"n={stats.count}, p50={stats.p50:.4g})"
        )
