"""Named counters, gauges, and timing histograms behind one registry.

The :class:`MetricsRegistry` is deliberately minimal — dictionaries of
floats plus value-list histograms — because every number the paper
reports is either a monotone tally (pruned objects, page accesses) or a
per-query distribution (CPU time). The :class:`Recorder` bundles a
registry with a tracer and is the single object the query processor
threads through its phases; :meth:`Recorder.record_query` absorbs a
finished query's :class:`~repro.core.query.QueryStatistics` — including
every :class:`~repro.core.query.PruningCounters` field, verbatim — so
the scattered ad-hoc plumbing of earlier revisions now has one sink.
"""

from __future__ import annotations

import dataclasses
import math
import random
import threading
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .rolling import RollingHistogram, WindowStats
from .tracer import NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core.query import QueryStatistics

__all__ = [
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Recorder",
    "process_rss_bytes",
]


def process_rss_bytes() -> float:
    """This process's resident set size in bytes (0.0 if unknown).

    Reads ``/proc/self/status`` (Linux); falls back to
    ``resource.getrusage`` peak-RSS elsewhere. Used for the
    ``process.rss_bytes`` gauge and the frozen-snapshot scale benchmark,
    which measures how little incremental RSS a memmap-attached worker
    adds over the shared page cache.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) * 1024.0
    except OSError:
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return float(usage) * (1.0 if usage > 1 << 32 else 1024.0)
    except Exception:  # pragma: no cover - platform without getrusage
        return 0.0


@dataclasses.dataclass(frozen=True)
class HistogramStats:
    """A consistent point-in-time summary of one :class:`Histogram`."""

    count: int
    sum: float
    p50: float
    p95: float
    p99: float
    max: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Histogram:
    """A value histogram reporting count/sum/mean and p50/p95/p99/max.

    ``count``, ``sum`` (hence ``mean``), and ``max`` are exact over every
    observation. The raw observations themselves are bounded: at most
    ``max_samples`` of them are retained via Algorithm-R reservoir
    sampling (seeded, so runs are reproducible), and percentiles use the
    nearest-rank rule on a sorted copy of the reservoir. Below the cap
    the reservoir holds every value and percentiles are exact — the
    common case for per-query workloads; above it memory stays O(cap)
    no matter how many values stream in.

    Thread-safe: concurrent :meth:`observe` calls from service worker
    threads serialize on a per-histogram lock, and :meth:`stats` takes a
    consistent snapshot under the same lock.
    """

    __slots__ = (
        "values", "max_samples", "_count", "_sum", "_max", "_rng", "_lock",
    )

    DEFAULT_MAX_SAMPLES = 4096

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.values: List[float] = []
        self.max_samples = max_samples
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._rng = random.Random(0x6A55)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._count == 1 or value > self._max:
                self._max = value
            if len(self.values) < self.max_samples:
                self.values.append(value)
            else:
                # Algorithm R: replace a random reservoir slot with
                # probability max_samples / count.
                slot = self._rng.randrange(self._count)
                if slot < self.max_samples:
                    self.values[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100].

        Exact while the observation count is within ``max_samples``;
        estimated from the uniform reservoir sample beyond it.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            ordered = sorted(self.values)
        if not ordered:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    def absorb(
        self,
        count: int,
        total: float,
        maximum: float,
        samples: Sequence[float] = (),
    ) -> None:
        """Fold another histogram's observations in (delta merge).

        ``count``/``sum``/``max`` stay exact — they are summed/maxed
        directly, never re-derived from samples. The samples refresh
        the reservoir: below the cap they are kept verbatim, above it
        each takes a slot with probability ``cap / merged_count``,
        mirroring what Algorithm R would have converged to had the
        observations streamed in individually.
        """
        if count <= 0:
            return
        with self._lock:
            had = self._count
            self._count += count
            self._sum += float(total)
            if not had or maximum > self._max:
                self._max = float(maximum)
            for value in samples:
                value = float(value)
                if len(self.values) < self.max_samples:
                    self.values.append(value)
                else:
                    slot = self._rng.randrange(self._count)
                    if slot < self.max_samples:
                        self.values[slot] = value

    def stats(self) -> HistogramStats:
        """One consistent summary (count/sum/quantiles read atomically)."""
        with self._lock:
            count, total, maximum = self._count, self._sum, self._max
            ordered = sorted(self.values)

        def rank(p: float) -> float:
            if not ordered:
                return 0.0
            position = max(1, math.ceil(p / 100.0 * len(ordered)))
            return ordered[min(position, len(ordered)) - 1]

        return HistogramStats(
            count=count, sum=total, p50=rank(50.0), p95=rank(95.0),
            p99=rank(99.0), max=maximum if count else 0.0,
        )

    def __repr__(self) -> str:
        return f"Histogram(n={self.count}, p50={self.p50:.4g}, max={self.max:.4g})"


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, scrape-consistent image of a :class:`MetricsRegistry`.

    This is what a long-lived service hands to the Prometheus exporter:
    counters stay monotone (no mid-flight :meth:`MetricsRegistry.reset`
    zeroing a scraper's deltas), and all values were read under the
    registry lock, so one exposition never mixes two moments in time.
    Shares the attribute shape :func:`~repro.obs.exporters.prometheus_text`
    reads (``counters`` / ``gauges`` / ``histograms`` / ``windows``).
    """

    counters: Dict[str, float]
    gauges: Dict[str, float]
    histograms: Dict[str, HistogramStats]
    windows: Dict[str, WindowStats]


class MetricsRegistry:
    """Named counters (monotone), gauges (last value), and histograms.

    Two histogram families coexist: :meth:`observe` feeds lifetime
    :class:`Histogram` reservoirs (the benchmark/CLI shape), while
    :meth:`observe_window` feeds :class:`RollingHistogram` windows whose
    percentiles describe only recent traffic (the daemon's latency
    p50/p95/p99). All mutation paths are thread-safe; a scraping thread
    should read through :meth:`snapshot` rather than the live dicts.
    """

    def __init__(
        self, window_sec: float = RollingHistogram.DEFAULT_WINDOW_SEC
    ) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.windows: Dict[str, RollingHistogram] = {}
        self.window_sec = window_sec
        self._lock = threading.RLock()

    def inc(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def observe_window(self, name: str, value: float) -> None:
        """Record into the named rolling-window histogram."""
        with self._lock:
            window = self.windows.get(name)
            if window is None:
                window = self.windows[name] = RollingHistogram(
                    window_sec=self.window_sec
                )
        window.observe(value)

    def counter(self, name: str) -> float:
        with self._lock:
            return self.counters.get(name, 0.0)

    def absorb_histogram(self, name: str, sketch) -> None:
        """Fold a :class:`~repro.obs.delta.HistogramSketch`-shaped
        object (``count``/``sum``/``max``/``samples``) into the named
        histogram — the parent-side arm of worker delta shipping."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
        hist.absorb(sketch.count, sketch.sum, sketch.max, sketch.samples)

    def drain(
        self,
    ) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, Histogram]]:
        """Atomically hand over counters/gauges/histograms and reset.

        The capture side of worker delta shipping: the returned
        histograms are *removed* from the registry (fresh ones are
        created on next observe), so the caller may read them without
        racing the worker's next chunk. Rolling windows stay — workers
        never populate them; they are parent-side latency state.
        """
        with self._lock:
            counters = self.counters
            gauges = self.gauges
            histograms = self.histograms
            self.counters = {}
            self.gauges = {}
            self.histograms = {}
        return counters, gauges, histograms

    def reset(self) -> None:
        """Zero everything — for short-lived runs (CLI, tests) only.

        A long-lived service must never reset mid-flight: a scraper
        computing counter deltas would see them go backwards. Daemons
        expose :meth:`snapshot` instead and let counters stay monotone
        for the whole process lifetime.
        """
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            self.windows.clear()

    def snapshot(self) -> MetricsSnapshot:
        """A frozen scrape-consistent copy (see :class:`MetricsSnapshot`)."""
        with self._lock:
            counters = dict(self.counters)
            gauges = dict(self.gauges)
            histograms = list(self.histograms.items())
            windows = list(self.windows.items())
        return MetricsSnapshot(
            counters=counters,
            gauges=gauges,
            histograms={name: h.stats() for name, h in histograms},
            windows={name: w.snapshot() for name, w in windows},
        )

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """A plain-data snapshot (JSON-serializable)."""
        snap = self.snapshot()
        doc: Dict[str, Dict[str, float]] = {
            "counters": snap.counters,
            "gauges": snap.gauges,
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean,
                    "p50": h.p50,
                    "p95": h.p95,
                    "max": h.max,
                }
                for name, h in snap.histograms.items()
            },
        }
        if snap.windows:
            doc["windows"] = {
                name: {
                    "window_sec": w.window_sec,
                    "count": w.count,
                    "sum": w.sum,
                    "p50": w.p50,
                    "p95": w.p95,
                    "p99": w.p99,
                    "max": w.max,
                    "total_count": w.total_count,
                    "total_sum": w.total_sum,
                }
                for name, w in snap.windows.items()
            }
        return doc


class Recorder:
    """One tracer + metrics registry + explain funnel, threaded through
    the processor.

    The default construction (``Recorder()``) pairs a
    :class:`NullTracer` and a :class:`~repro.obs.funnel.NullExplain`
    with a live registry: per-phase span timing and per-rule funnel
    accounting are off (zero hot-path overhead) while the cheap
    end-of-query metric absorption stays on. Pass ``tracer=Tracer()`` to
    capture spans, or use :meth:`explaining` for the full EXPLAIN
    ANALYZE configuration (spans + funnel).
    """

    __slots__ = ("tracer", "metrics", "explain")

    def __init__(
        self,
        tracer: Optional[object] = None,
        metrics: Optional[MetricsRegistry] = None,
        explain: Optional[object] = None,
    ) -> None:
        # Imported here, not at module top: funnel reuses Histogram from
        # this module, so the default-wiring import runs the other way.
        from .funnel import NULL_EXPLAIN

        self.tracer = tracer if tracer is not None else NullTracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.explain = explain if explain is not None else NULL_EXPLAIN

    @classmethod
    def traced(cls) -> "Recorder":
        """A recorder with an active span tracer."""
        return cls(tracer=Tracer())

    @classmethod
    def explaining(cls) -> "Recorder":
        """A recorder with span tracing *and* funnel accounting on."""
        from .funnel import ExplainRecorder

        return cls(tracer=Tracer(), explain=ExplainRecorder())

    @property
    def active(self) -> bool:
        """True when span tracing is on."""
        return bool(getattr(self.tracer, "active", False))

    @property
    def explaining_active(self) -> bool:
        """True when funnel (explain) accounting is on."""
        return bool(getattr(self.explain, "active", False))

    def span(self, name: str):
        return self.tracer.span(name)

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.metrics.inc(name, amount)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def record_query(self, stats: "QueryStatistics") -> None:
        """Absorb one finished query's statistics into the registry.

        Every :class:`PruningCounters` field lands under ``pruning.*``
        unchanged (the fig7a-d powers recompute bit-identically from
        these), the scalar measurements under ``query.*`` histograms,
        and the Dijkstra/oracle tallies under ``dijkstra.*`` counters.
        """
        m = self.metrics
        m.inc("query.count")
        m.observe("query.cpu_time_sec", stats.cpu_time_sec)
        m.observe("query.page_accesses", stats.page_accesses)
        m.observe("query.candidate_users", stats.candidate_users)
        m.observe("query.candidate_pois", stats.candidate_pois)
        m.observe("query.groups_refined", stats.groups_refined)
        m.inc("dijkstra.searches", stats.dijkstra_searches)
        m.inc("dijkstra.cache_hits", stats.dijkstra_cache_hits)
        for field in dataclasses.fields(stats.pruning):
            m.inc(f"pruning.{field.name}", getattr(stats.pruning, field.name))
        for phase, seconds in stats.phase_times.items():
            m.observe(f"phase.{phase}", seconds)
