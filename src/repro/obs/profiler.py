"""A stdlib-only sampling profiler with span-aware CPU attribution.

Deterministic instrumentation (the tracer) answers *which phase* was
slow; this module answers *which code inside the phase*. Two sampling
timers share one report shape:

``thread`` (default)
    A daemon thread wakes every ``interval_sec`` and walks
    ``sys._current_frames()``: every thread's Python stack is recorded,
    so it works off the main thread, inside the serve daemon, and under
    worker pools. Wall-clock sampling — blocked threads show where they
    block, exactly like ``py-spy`` in its default mode.

``signal``
    ``signal.setitimer(ITIMER_PROF)`` delivers ``SIGPROF`` after CPU
    time is consumed; the handler records the interrupted frame. Pure
    on-CPU attribution, but POSIX restricts it to the main thread — the
    ``gpssn profile`` CLI can opt in, the daemon cannot.

Per-phase attribution rides on the span tracer: each sample consults
the registered tracers' :meth:`~repro.obs.tracer.Tracer.active_stacks`
and charges the innermost open span of the sampled thread, so the
report can say "71% of CPU inside ``refine.pair_distance``" without any
extra instrumentation in the hot path.

Exports: Brendan-Gregg collapsed stacks (``frame;frame;frame count``,
the format every flamegraph toolchain eats) and a self-contained
flamegraph HTML page (inline CSS, no external assets — the same
air-gap stance as the ``/status`` dashboard).
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ProfileReport", "SamplingProfiler"]

#: Stop extending the per-stack table past this many unique stacks;
#: further new stacks aggregate under ``(other)``. Keeps a pathological
#: workload (deep recursion over varying line numbers) O(1) in memory.
MAX_UNIQUE_STACKS = 20_000

#: Frames deeper than this are truncated (marker frame appended).
MAX_STACK_DEPTH = 64

_TRUNCATED = "(deeper frames truncated)"
_OTHER = "(other)"
_UNATTRIBUTED = "(no active span)"


def _frame_label(frame) -> str:
    """One collapsed-stack frame token: ``func(file:line)``.

    No spaces or semicolons — both are structural in the collapsed
    format (``;`` separates frames, the final space separates the
    count). Filenames can contain either (``<frozen runpy>``), so the
    token is sanitized.
    """
    code = frame.f_code
    label = (
        f"{code.co_name}"
        f"({os.path.basename(code.co_filename)}:{frame.f_lineno})"
    )
    return label.replace(";", ",").replace(" ", "_")


def _walk_stack(frame) -> List[str]:
    """Root-first frame labels for one thread's current stack."""
    labels: List[str] = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
        depth += 1
    if frame is not None:
        labels.append(_TRUNCATED)
    labels.reverse()
    return labels


@dataclass
class ProfileReport:
    """What one profiling session measured (plain data, renderable)."""

    interval_sec: float
    duration_sec: float
    #: collapsed stack ("f;g;h") -> sample count
    samples: Dict[str, int] = field(default_factory=dict)
    #: innermost open span name -> sample count (span-aware attribution)
    phase_samples: Dict[str, int] = field(default_factory=dict)
    timer: str = "thread"

    @property
    def num_samples(self) -> int:
        return sum(self.samples.values())

    def collapsed_lines(self) -> List[str]:
        """``stack count`` lines, most-sampled first (stable order)."""
        ordered = sorted(
            self.samples.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [f"{stack} {count}" for stack, count in ordered]

    def write_collapsed(self, path) -> int:
        """Write the collapsed-stack file; returns the line count."""
        lines = self.collapsed_lines()
        with open(path, "w", encoding="utf-8") as fp:
            fp.write("\n".join(lines) + ("\n" if lines else ""))
        return len(lines)

    def top_functions(self, n: int = 10) -> List[Tuple[str, int, int]]:
        """``(frame, self_samples, total_samples)`` rows, by self time.

        ``self`` counts samples where the frame was the leaf (actually
        executing); ``total`` counts samples where it was anywhere on
        the stack (inclusive time).
        """
        self_counts: Dict[str, int] = {}
        total_counts: Dict[str, int] = {}
        for stack, count in self.samples.items():
            frames = stack.split(";")
            self_counts[frames[-1]] = (
                self_counts.get(frames[-1], 0) + count
            )
            for frame in set(frames):
                total_counts[frame] = total_counts.get(frame, 0) + count
        ordered = sorted(
            self_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            (frame, self_count, total_counts[frame])
            for frame, self_count in ordered[:n]
        ]

    def phase_rows(self) -> List[Tuple[str, int, float]]:
        """``(phase, samples, share)`` rows, most-sampled first."""
        total = sum(self.phase_samples.values())
        ordered = sorted(
            self.phase_samples.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            (phase, count, count / total if total else 0.0)
            for phase, count in ordered
        ]

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": "gpssn.profile/1",
            "timer": self.timer,
            "interval_sec": self.interval_sec,
            "duration_sec": round(self.duration_sec, 6),
            "num_samples": self.num_samples,
            "unique_stacks": len(self.samples),
            "phases": {
                phase: count
                for phase, count in sorted(self.phase_samples.items())
            },
            "top": [
                {"frame": frame, "self": s, "total": t}
                for frame, s, t in self.top_functions(20)
            ],
        }

    # -- flamegraph ---------------------------------------------------------

    def _tree(self) -> dict:
        root = {"name": "all", "value": 0, "children": {}}
        for stack, count in self.samples.items():
            root["value"] += count
            node = root
            for frame in stack.split(";"):
                child = node["children"].get(frame)
                if child is None:
                    child = node["children"][frame] = {
                        "name": frame, "value": 0, "children": {},
                    }
                child["value"] += count
                node = child
        return root

    def flamegraph_html(self, title: str = "gpssn profile") -> str:
        """A self-contained flamegraph page (no external assets)."""
        import html as _html

        total = max(self.num_samples, 1)
        parts: List[str] = []

        def emit(node: dict, depth: int) -> None:
            share = node["value"] / total
            if share < 0.001:  # sub-0.1% slivers are unreadable anyway
                return
            label = _html.escape(node["name"])
            tip = _html.escape(
                f"{node['name']} — {node['value']} samples "
                f"({share:.1%})"
            )
            parts.append(
                f'<div class="f d{depth % 6}" '
                f'style="width:{share * 100:.3f}%" title="{tip}">'
                f"<span>{label}</span>"
            )
            children = sorted(
                node["children"].values(),
                key=lambda c: (-c["value"], c["name"]),
            )
            if children:
                parts.append('<div class="r">')
                for child in children:
                    emit_child(child, node["value"], depth + 1)
                parts.append("</div>")
            parts.append("</div>")

        def emit_child(node: dict, parent_value: int, depth: int) -> None:
            # Width inside a row is relative to the parent, so sibling
            # widths sum to <= 100% and the layout nests without JS.
            share_of_total = node["value"] / total
            if share_of_total < 0.001:
                return
            label = _html.escape(node["name"])
            tip = _html.escape(
                f"{node['name']} — {node['value']} samples "
                f"({share_of_total:.1%} of all)"
            )
            width = node["value"] / max(parent_value, 1) * 100
            parts.append(
                f'<div class="f d{depth % 6}" '
                f'style="width:{width:.3f}%" title="{tip}">'
                f"<span>{label}</span>"
            )
            children = sorted(
                node["children"].values(),
                key=lambda c: (-c["value"], c["name"]),
            )
            if children:
                parts.append('<div class="r">')
                for child in children:
                    emit_child(child, node["value"], depth + 1)
                parts.append("</div>")
            parts.append("</div>")

        emit(self._tree(), 0)
        phase_list = "".join(
            f"<li>{_html.escape(phase)} — {count} samples "
            f"({share:.1%})</li>"
            for phase, count, share in self.phase_rows()
        )
        style = (
            "body{font-family:ui-monospace,Menlo,monospace;margin:1.5rem;"
            "background:#fafafa;color:#1a1a1a}"
            ".f{display:inline-block;vertical-align:top;overflow:hidden;"
            "white-space:nowrap;box-sizing:border-box;"
            "border:1px solid #fff;border-radius:2px;font-size:11px}"
            ".f>span{display:block;overflow:hidden;text-overflow:ellipsis;"
            "padding:1px 3px}"
            ".r{width:100%}"
            ".d0{background:#fde68a}.d1{background:#fca5a5}"
            ".d2{background:#fdba74}.d3{background:#f9a8d4}"
            ".d4{background:#fcd34d}.d5{background:#f87171}"
            ".muted{color:#777;font-size:.85rem}"
        )
        return (
            "<!doctype html><html><head><meta charset='utf-8'>"
            f"<title>{_html.escape(title)}</title>"
            f"<style>{style}</style></head><body>"
            f"<h1>{_html.escape(title)}</h1>"
            f"<p class='muted'>{self.num_samples} samples over "
            f"{self.duration_sec:.2f}s at {self.interval_sec * 1000:.0f}ms "
            f"({self.timer} timer); widths are sample shares, hover for "
            "counts</p>"
            + "".join(parts)
            + ("<h2>Per-phase CPU attribution</h2><ul>"
               f"{phase_list}</ul>" if phase_list else "")
            + "</body></html>"
        )


class SamplingProfiler:
    """Sample Python stacks on a timer; see the module docstring.

    Usage::

        profiler = SamplingProfiler(interval_sec=0.005, tracers=[tracer])
        with profiler:
            run_workload()
        report = profiler.report
        report.write_collapsed("profile.collapsed")

    or the blocking helper ``SamplingProfiler(...).run_for(2.0)`` used
    by the daemon's ``/debug/profile`` endpoint.
    """

    def __init__(
        self,
        interval_sec: float = 0.005,
        tracers: Sequence[object] = (),
        timer: str = "thread",
    ) -> None:
        if interval_sec <= 0:
            raise ValueError(
                f"interval_sec must be > 0, got {interval_sec}"
            )
        if timer not in ("thread", "signal"):
            raise ValueError(
                f"timer must be 'thread' or 'signal', got {timer!r}"
            )
        if timer == "signal":
            if not hasattr(signal, "setitimer"):  # pragma: no cover
                raise ValueError(
                    "signal timer needs POSIX setitimer; "
                    "use timer='thread'"
                )
            if threading.current_thread() is not threading.main_thread():
                raise ValueError(
                    "signal timer only works from the main thread; "
                    "use timer='thread'"
                )
        self.interval_sec = float(interval_sec)
        self.timer = timer
        self._tracers = list(tracers)
        self._samples: Dict[str, int] = {}
        self._phase_samples: Dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0
        self._old_handler = None
        self.report: Optional[ProfileReport] = None

    # -- sample recording ---------------------------------------------------

    def _record_stack(self, labels: List[str]) -> None:
        if not labels:
            return
        key = ";".join(labels)
        if key in self._samples:
            self._samples[key] += 1
        elif len(self._samples) < MAX_UNIQUE_STACKS:
            self._samples[key] = 1
        else:
            self._samples[_OTHER] = self._samples.get(_OTHER, 0) + 1

    def _record_phase(self, ident: int) -> None:
        phase = _UNATTRIBUTED
        for tracer in self._tracers:
            stacks = getattr(tracer, "active_stacks", None)
            if stacks is None:
                continue
            names = stacks().get(ident)
            if names:
                phase = names[-1]
                break
        self._phase_samples[phase] = self._phase_samples.get(phase, 0) + 1

    def _sample_all_threads(self, skip_ident: int) -> None:
        for ident, frame in sys._current_frames().items():
            if ident == skip_ident:
                continue
            self._record_stack(_walk_stack(frame))
            self._record_phase(ident)

    def _sampler_loop(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval_sec):
            self._sample_all_threads(own)

    def _on_sigprof(self, signum, frame) -> None:
        self._record_stack(_walk_stack(frame))
        self._record_phase(threading.get_ident())

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None or self._old_handler is not None:
            raise RuntimeError("profiler already running")
        self._samples = {}
        self._phase_samples = {}
        self._stop.clear()
        self._started_at = time.perf_counter()
        if self.timer == "signal":
            self._old_handler = signal.signal(
                signal.SIGPROF, self._on_sigprof
            )
            signal.setitimer(
                signal.ITIMER_PROF, self.interval_sec, self.interval_sec
            )
        else:
            self._thread = threading.Thread(
                target=self._sampler_loop,
                name="gpssn-profiler",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> ProfileReport:
        duration = time.perf_counter() - self._started_at
        if self.timer == "signal":
            signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
            if self._old_handler is not None:
                signal.signal(signal.SIGPROF, self._old_handler)
                self._old_handler = None
        elif self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.report = ProfileReport(
            interval_sec=self.interval_sec,
            duration_sec=duration,
            samples=self._samples,
            phase_samples=self._phase_samples,
            timer=self.timer,
        )
        return self.report

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def run_for(self, seconds: float) -> ProfileReport:
        """Block for ``seconds`` while sampling (the endpoint's shape)."""
        self.start()
        try:
            time.sleep(max(seconds, 0.0))
        finally:
            report = self.stop()
        return report
