"""Per-query pruning-funnel accounting (the EXPLAIN ANALYZE recorder).

The span tracer answers *where time went*; this module answers *which
pruning rule killed which candidate, and by how much*. Every pruning
site in the query pipeline reports three kinds of events, keyed by a
phase name and a stable rule id (``idx.road_matching``,
``obj.social_hops``, ``pair.distance``, ...):

* ``visit(phase, n)`` — ``n`` candidates entered the phase;
* ``prune(phase, rule, n, margin)`` — ``n`` candidates were discarded
  by ``rule``; ``margin`` is the *bound tightness* of the decision (how
  far the failing bound was past its threshold, in the rule's own
  units) — the signal for threshold tuning;
* ``survive(phase, n)`` — ``n`` candidates left the phase alive.

The bookkeeping invariant, checked by the integration suite for every
phase of every entry point::

    visited == survived + sum(pruned over the phase's rules)

Two recorder implementations share the interface, mirroring
``Tracer`` / ``NullTracer``:

* :class:`ExplainRecorder` — accumulates :class:`PhaseFunnel` /
  :class:`RuleStats` objects (margin samples are reservoir-capped via
  :class:`~repro.obs.registry.Histogram`, so a million prune events
  cost O(cap) memory);
* :class:`NullExplain` — the zero-overhead default on every
  :class:`~repro.obs.registry.Recorder`: each hook is a no-op method
  call, nothing is allocated, the hot path stays hot.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional

from .registry import Histogram

__all__ = [
    "ExplainRecorder",
    "NullExplain",
    "NULL_EXPLAIN",
    "PhaseFunnel",
    "RuleStats",
]

#: Default reservoir cap for per-rule margin samples. Small: margins
#: feed percentile summaries, not exact distributions.
DEFAULT_MARGIN_SAMPLES = 256


class RuleStats:
    """Prune tally + bound-tightness samples for one rule in one phase."""

    __slots__ = ("rule", "pruned", "margins")

    def __init__(self, rule: str, max_margin_samples: int) -> None:
        self.rule = rule
        self.pruned = 0
        self.margins = Histogram(max_samples=max_margin_samples)

    def as_dict(self) -> Dict[str, object]:
        entry: Dict[str, object] = {"pruned": self.pruned}
        if self.margins.count:
            entry["margin"] = {
                "count": self.margins.count,
                "mean": self.margins.mean,
                "p50": self.margins.p50,
                "p95": self.margins.p95,
                "max": self.margins.max,
            }
        return entry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RuleStats({self.rule!r}, pruned={self.pruned})"


class PhaseFunnel:
    """The candidate funnel of one pipeline phase."""

    __slots__ = ("name", "visited", "survived", "rules")

    def __init__(self, name: str) -> None:
        self.name = name
        self.visited = 0
        self.survived = 0
        self.rules: Dict[str, RuleStats] = {}

    @property
    def pruned(self) -> int:
        """Total candidates pruned in this phase, over all rules."""
        return sum(stats.pruned for stats in self.rules.values())

    @property
    def prune_rate(self) -> float:
        """Fraction of visited candidates pruned (0.0 when none visited)."""
        return self.pruned / self.visited if self.visited else 0.0

    def balanced(self) -> bool:
        """The funnel invariant: visited == survived + pruned."""
        return self.visited == self.survived + self.pruned

    def as_dict(self) -> Dict[str, object]:
        return {
            "visited": self.visited,
            "survived": self.survived,
            "pruned": self.pruned,
            "rules": {
                rule: stats.as_dict() for rule, stats in self.rules.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhaseFunnel({self.name!r}, {self.visited} -> "
            f"{self.survived}, {len(self.rules)} rules)"
        )


class ExplainRecorder:
    """Accumulates per-phase candidate funnels across queries.

    One instance can span a whole workload: counts simply accumulate.
    For a per-query report, use a fresh recorder (the CLI does) or
    :meth:`clear` between queries.
    """

    active = True

    def __init__(
        self, max_margin_samples: int = DEFAULT_MARGIN_SAMPLES
    ) -> None:
        if max_margin_samples < 1:
            raise ValueError(
                f"max_margin_samples must be >= 1, got {max_margin_samples}"
            )
        self.phases: Dict[str, PhaseFunnel] = {}
        self._max_margin_samples = max_margin_samples

    def phase(self, name: str) -> PhaseFunnel:
        """The funnel for ``name``, created on first use (insertion order
        is the pipeline order, since phases record as they run)."""
        funnel = self.phases.get(name)
        if funnel is None:
            funnel = self.phases[name] = PhaseFunnel(name)
        return funnel

    def visit(self, phase: str, count: int = 1) -> None:
        self.phase(phase).visited += count

    def survive(self, phase: str, count: int = 1) -> None:
        self.phase(phase).survived += count

    def prune(
        self,
        phase: str,
        rule: str,
        count: int = 1,
        margin: Optional[float] = None,
    ) -> None:
        """Record ``count`` candidates pruned by ``rule``.

        ``margin`` is the decision's bound tightness — by convention the
        amount by which the failing bound overshot its threshold, so it
        is >= 0 whenever the rule fired (see the ``*_margin`` helpers in
        :mod:`repro.core.pruning`). Non-finite margins (infinite hop
        bounds) are counted but not sampled.
        """
        funnel = self.phase(phase)
        stats = funnel.rules.get(rule)
        if stats is None:
            stats = funnel.rules[rule] = RuleStats(
                rule, self._max_margin_samples
            )
        stats.pruned += count
        if margin is not None and math.isfinite(margin):
            stats.margins.observe(margin)

    def prune_batch(self, phase: str, rule: str, margins) -> None:
        """Record one pruned candidate per entry of ``margins``.

        The vectorized pruning kernels decide a whole batch at once;
        this folds the batch into the same state N individual
        :meth:`prune` calls would produce — the count grows by
        ``len(margins)`` and each finite margin is observed in order, so
        the reservoir ends up identical to the scalar event stream.
        """
        n = len(margins)
        if not n:
            return
        funnel = self.phase(phase)
        stats = funnel.rules.get(rule)
        if stats is None:
            stats = funnel.rules[rule] = RuleStats(
                rule, self._max_margin_samples
            )
        stats.pruned += n
        observe = stats.margins.observe
        for margin in margins:
            margin = float(margin)
            if math.isfinite(margin):
                observe(margin)

    def rule_counts(self) -> Dict[str, int]:
        """Total pruned per rule id, summed over phases."""
        totals: Dict[str, int] = {}
        for funnel in self.phases.values():
            for rule, stats in funnel.rules.items():
                totals[rule] = totals.get(rule, 0) + stats.pruned
        return totals

    def absorb(self, phases_doc: Dict[str, dict]) -> None:
        """Fold a plain-data funnel delta in (worker delta shipping).

        ``phases_doc`` is the shape :func:`repro.obs.delta._funnel_doc`
        captures: per phase ``visited``/``survived`` and per rule the
        exact ``pruned``/``margin_count``/``margin_sum``/``margin_max``
        tallies plus capped margin samples. Tallies add exactly — the
        funnel invariant (visited == survived + pruned) is preserved by
        construction — and margin samples refresh the reservoir via
        :meth:`~repro.obs.registry.Histogram.absorb`.
        """
        for phase, doc in phases_doc.items():
            funnel = self.phase(phase)
            funnel.visited += int(doc.get("visited", 0))
            funnel.survived += int(doc.get("survived", 0))
            for rule, entry in (doc.get("rules") or {}).items():
                stats = funnel.rules.get(rule)
                if stats is None:
                    stats = funnel.rules[rule] = RuleStats(
                        rule, self._max_margin_samples
                    )
                stats.pruned += int(entry.get("pruned", 0))
                count = int(entry.get("margin_count", 0))
                if count:
                    stats.margins.absorb(
                        count,
                        float(entry.get("margin_sum", 0.0)),
                        float(entry.get("margin_max", 0.0)),
                        entry.get("margins", ()),
                    )

    def iter_phases(self) -> Iterator[PhaseFunnel]:
        return iter(self.phases.values())

    def clear(self) -> None:
        self.phases = {}

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """A plain-data snapshot (JSON-serializable), phase -> funnel."""
        return {name: f.as_dict() for name, f in self.phases.items()}


class NullExplain:
    """Zero-overhead explain recorder: every hook is a no-op."""

    active = False
    phases: Dict[str, PhaseFunnel] = {}

    def phase(self, name: str) -> None:
        return None

    def visit(self, phase: str, count: int = 1) -> None:
        return None

    def survive(self, phase: str, count: int = 1) -> None:
        return None

    def prune(
        self,
        phase: str,
        rule: str,
        count: int = 1,
        margin: Optional[float] = None,
    ) -> None:
        return None

    def prune_batch(self, phase: str, rule: str, margins) -> None:
        return None

    def rule_counts(self) -> Dict[str, int]:
        return {}

    def absorb(self, phases_doc: Dict[str, dict]) -> None:
        return None

    def iter_phases(self) -> Iterator[PhaseFunnel]:
        return iter(())

    def clear(self) -> None:
        return None

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {}


#: The shared do-nothing instance handed to every default Recorder.
NULL_EXPLAIN = NullExplain()
