"""Observability: hierarchical span tracing plus a metrics registry.

The GP-SSN pipeline's headline numbers are all *measurements* — CPU
time, page accesses, pruning power — and this package is the single
place they flow through:

* :mod:`repro.obs.tracer` — a hierarchical span tracer with a
  context-manager API (:class:`Tracer`) and a zero-overhead
  :class:`NullTracer` default, so the hot path pays nothing unless a
  caller opts in;
* :mod:`repro.obs.registry` — named counters, gauges, and timing
  histograms (:class:`MetricsRegistry`), bundled with a tracer behind
  one :class:`Recorder` object that the query processor threads through
  its phases;
* :mod:`repro.obs.exporters` — JSON-lines trace dumps, Prometheus-style
  text, and human-readable per-phase tables;
* :mod:`repro.obs.funnel` / :mod:`repro.obs.explain` — the EXPLAIN
  ANALYZE layer: per-rule pruning funnels (visited → pruned → survived,
  with bound-tightness margins) recorded at every pruning site, a
  zero-overhead :class:`NullExplain` default, and the tree-of-phases
  report renderer.
"""

from .registry import (
    Histogram,
    HistogramStats,
    MetricsRegistry,
    MetricsSnapshot,
    Recorder,
    process_rss_bytes,
)
from .rolling import RollingHistogram, WindowStats
from .tracer import NullTracer, Span, Tracer, aggregate_spans
from .exporters import (
    explain_to_json,
    format_stats_line,
    phase_table,
    prometheus_text,
    spans_to_jsonl,
    write_trace_jsonl,
)
from .funnel import NULL_EXPLAIN, ExplainRecorder, NullExplain, PhaseFunnel
from .explain import RULES, explain_report, rule_info

__all__ = [
    "ExplainRecorder",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_EXPLAIN",
    "NullExplain",
    "NullTracer",
    "PhaseFunnel",
    "RULES",
    "Recorder",
    "RollingHistogram",
    "Span",
    "WindowStats",
    "Tracer",
    "aggregate_spans",
    "explain_report",
    "explain_to_json",
    "format_stats_line",
    "phase_table",
    "process_rss_bytes",
    "prometheus_text",
    "rule_info",
    "spans_to_jsonl",
    "write_trace_jsonl",
]
