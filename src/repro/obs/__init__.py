"""Observability: hierarchical span tracing plus a metrics registry.

The GP-SSN pipeline's headline numbers are all *measurements* — CPU
time, page accesses, pruning power — and this package is the single
place they flow through:

* :mod:`repro.obs.tracer` — a hierarchical span tracer with a
  context-manager API (:class:`Tracer`) and a zero-overhead
  :class:`NullTracer` default, so the hot path pays nothing unless a
  caller opts in;
* :mod:`repro.obs.registry` — named counters, gauges, and timing
  histograms (:class:`MetricsRegistry`), bundled with a tracer behind
  one :class:`Recorder` object that the query processor threads through
  its phases;
* :mod:`repro.obs.exporters` — JSON-lines trace dumps, Prometheus-style
  text, and human-readable per-phase tables;
* :mod:`repro.obs.funnel` / :mod:`repro.obs.explain` — the EXPLAIN
  ANALYZE layer: per-rule pruning funnels (visited → pruned → survived,
  with bound-tightness margins) recorded at every pruning site, a
  zero-overhead :class:`NullExplain` default, and the tree-of-phases
  report renderer;
* :mod:`repro.obs.delta` / :mod:`repro.obs.context` — the cross-process
  telemetry plane: capture-and-reset :class:`MetricsDelta` envelopes
  workers ship back with their results (counters, gauges, histogram
  sketches, funnel deltas, sampled span forests) and the picklable
  :class:`TraceContext` that carries head-sampled trace decisions
  across the pool boundary;
* :mod:`repro.obs.profiler` — a stdlib-only sampling profiler
  (``sys._current_frames`` / ``SIGPROF``) with collapsed-stack and
  flamegraph-HTML export plus per-phase CPU attribution keyed off the
  tracer's active spans.
"""

from .registry import (
    Histogram,
    HistogramStats,
    MetricsRegistry,
    MetricsSnapshot,
    Recorder,
    process_rss_bytes,
)
from .rolling import RollingHistogram, WindowStats
from .tracer import NullTracer, Span, Tracer, aggregate_spans
from .exporters import (
    explain_to_json,
    format_stats_line,
    phase_table,
    prometheus_text,
    spans_to_jsonl,
    write_trace_jsonl,
)
from .funnel import NULL_EXPLAIN, ExplainRecorder, NullExplain, PhaseFunnel
from .explain import RULES, explain_report, rule_info
from .context import TraceContext, head_sample
from .delta import HistogramSketch, MetricsDelta, split_worker_metric
from .profiler import ProfileReport, SamplingProfiler

__all__ = [
    "ExplainRecorder",
    "HistogramSketch",
    "MetricsDelta",
    "ProfileReport",
    "SamplingProfiler",
    "TraceContext",
    "head_sample",
    "split_worker_metric",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_EXPLAIN",
    "NullExplain",
    "NullTracer",
    "PhaseFunnel",
    "RULES",
    "Recorder",
    "RollingHistogram",
    "Span",
    "WindowStats",
    "Tracer",
    "aggregate_spans",
    "explain_report",
    "explain_to_json",
    "format_stats_line",
    "phase_table",
    "process_rss_bytes",
    "prometheus_text",
    "rule_info",
    "spans_to_jsonl",
    "write_trace_jsonl",
]
