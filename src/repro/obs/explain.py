"""EXPLAIN ANALYZE rendering for recorded pruning funnels.

:mod:`repro.obs.funnel` collects the raw per-phase candidate funnels;
this module turns them into the two consumable shapes:

* :data:`RULES` — the merged rule registry (object-level, index-level,
  and refinement rules), mapping every stable rule id to its paper
  lemma/equation, the Fig. 7 ablation panel that isolates it, and the
  unit of its bound-tightness margin;
* :func:`explain_report` — the human-readable report: a tree of phases,
  each with its visited → survived funnel and a per-rule table of prune
  counts, shares, and margin percentiles.

JSON export lives in :func:`repro.obs.exporters.explain_to_json`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .funnel import ExplainRecorder, PhaseFunnel

__all__ = ["RULES", "explain_report", "rule_info"]

_RULES_CACHE: Optional[Dict[str, Dict[str, str]]] = None


def _load_rules() -> Dict[str, Dict[str, str]]:
    # Imported lazily: the rule tables live next to the predicates they
    # describe (core.pruning / core.index_pruning), and importing the
    # core package from obs at module-load time would re-enter the
    # processor's own ``from ..obs.registry import Recorder``.
    global _RULES_CACHE
    if _RULES_CACHE is None:
        from ..core.index_pruning import INDEX_RULES
        from ..core.pruning import OBJECT_RULES
        from ..dynamic.rules import CONTINUOUS_RULES

        merged: Dict[str, Dict[str, str]] = {}
        merged.update(INDEX_RULES)
        merged.update(OBJECT_RULES)
        merged.update(CONTINUOUS_RULES)
        _RULES_CACHE = merged
    return _RULES_CACHE


class _RulesProxy:
    """Mapping view over the lazily merged rule registry."""

    def __getitem__(self, rule: str) -> Dict[str, str]:
        return _load_rules()[rule]

    def __contains__(self, rule: object) -> bool:
        return rule in _load_rules()

    def __iter__(self):
        return iter(_load_rules())

    def __len__(self) -> int:
        return len(_load_rules())

    def get(self, rule: str, default=None):
        return _load_rules().get(rule, default)

    def items(self):
        return _load_rules().items()

    def keys(self):
        return _load_rules().keys()

    def values(self):
        return _load_rules().values()


#: rule id -> {lemma, figure, margin_unit, description}; the union of
#: :data:`repro.core.pruning.OBJECT_RULES` and
#: :data:`repro.core.index_pruning.INDEX_RULES`.
RULES = _RulesProxy()


def rule_info(rule: str) -> Dict[str, str]:
    """Registry entry for ``rule``; unknown ids get a stub entry."""
    return _load_rules().get(
        rule, {"lemma": "?", "figure": "?", "margin_unit": "?",
               "description": "unregistered rule"},
    )


def _phase_line(funnel: PhaseFunnel) -> str:
    rate = f"{funnel.prune_rate:.1%} pruned" if funnel.visited else "empty"
    line = (
        f"{funnel.name}: {funnel.visited} visited -> "
        f"{funnel.survived} survived ({rate})"
    )
    if not funnel.balanced():
        line += f"  [UNBALANCED: {funnel.pruned} pruned]"
    return line


def _rule_lines(funnel: PhaseFunnel, indent: str) -> List[str]:
    lines: List[str] = []
    ordered = sorted(
        funnel.rules.values(), key=lambda s: s.pruned, reverse=True
    )
    width = max((len(s.rule) for s in ordered), default=0)
    for stats in ordered:
        share = (
            f"{stats.pruned / funnel.visited:6.1%}" if funnel.visited
            else "     -"
        )
        line = (
            f"{indent}{stats.rule:<{width}}  {stats.pruned:>8} pruned "
            f"{share}"
        )
        if stats.margins.count:
            line += (
                f"  margin p50={stats.margins.p50:.3g} "
                f"p95={stats.margins.p95:.3g}"
            )
        line += f"  [{rule_info(stats.rule)['lemma']}]"
        lines.append(line)
    return lines


def explain_report(
    explain: ExplainRecorder,
    title: str = "EXPLAIN ANALYZE",
    stats=None,
) -> str:
    """Render the recorded funnels as a tree-of-phases report.

    One branch per phase in recording order (which is pipeline order),
    each listing its rules by descending prune count with the share of
    the phase's visited candidates, margin percentiles when sampled, and
    the paper lemma the rule implements. ``stats`` (an optional
    :class:`~repro.core.query.QueryStatistics`) appends the standard
    one-line cost summary.
    """
    phases = list(explain.iter_phases())
    lines = [title]
    if not phases:
        lines.append("(no funnel recorded — was explain enabled?)")
        return "\n".join(lines)
    for i, funnel in enumerate(phases):
        last = i == len(phases) - 1
        branch = "`- " if last else "|- "
        cont = "   " if last else "|  "
        lines.append(branch + _phase_line(funnel))
        lines.extend(_rule_lines(funnel, cont + "   "))
    if stats is not None:
        from .exporters import format_stats_line

        lines.append(format_stats_line(stats))
    return "\n".join(lines)
