"""Trace context that crosses the worker-pool boundary.

A traced request must stay one request no matter which backend answers
it: the daemon stamps the correlation id into a :class:`TraceContext`
and ships it with the shard, the worker captures its span forest under
that id, and the parent grafts the returned forest into one end-to-end
tree for ``GET /trace/<id>``. The context is a frozen plain-data
dataclass so it pickles to process-pool workers unchanged.

Head sampling is *deterministic in the request id*: whether a request
is traced is decided once, up front, by hashing the id against the
configured rate (:func:`head_sample`). Every hop — parent, worker,
retries — therefore agrees on the decision without coordination, and
replaying a request id reproduces its sampling fate exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .delta import MAX_TRACE_SPANS

__all__ = ["TraceContext", "head_sample"]

#: Resolution of the sampling hash: rates are effectively quantized to
#: 1/2^24, far finer than any sensible trace-sampling configuration.
_HASH_SPACE = 1 << 24


def head_sample(request_id: str, rate: float) -> bool:
    """Deterministically decide whether ``request_id`` is traced.

    ``rate`` is the target fraction in [0, 1]. The decision hashes only
    the id, so it is stable across processes, backends, and replays —
    the property that lets a worker and its parent agree without
    shipping any extra state.
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    digest = hashlib.sha256(request_id.encode("utf-8")).digest()
    bucket = int.from_bytes(digest[:3], "big")
    return bucket < rate * _HASH_SPACE


@dataclass(frozen=True)
class TraceContext:
    """What a worker needs to capture one request's span forest."""

    request_id: str
    #: Ship at most this many span-JSONL lines back (prefix of the
    #: forest; the remainder is counted as obs.worker_spans_dropped).
    max_spans: int = MAX_TRACE_SPANS

    @classmethod
    def sampled(
        cls, request_id: str, rate: float, force: bool = False
    ) -> "TraceContext | None":
        """A context when ``request_id`` should be traced, else None."""
        if force or head_sample(request_id, rate):
            return cls(request_id=request_id)
        return None
