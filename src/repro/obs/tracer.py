"""Hierarchical span tracing for the query pipeline.

A *span* is one timed region of execution (monotonic clock, nested).
The processor opens spans around its phases::

    with tracer.span("traverse"):
        with tracer.span("traverse.social_pruning"):
            ...

Two tracer implementations share the interface:

* :class:`Tracer` records a forest of :class:`Span` trees (one root per
  top-level region, usually one ``"query"`` span per query);
* :class:`NullTracer` is the default on every processor: its
  :meth:`~NullTracer.span` hands back one shared no-op context manager,
  so an untraced query pays two attribute lookups per phase and nothing
  per object — the hot path stays hot.

Span durations are measured with :func:`time.perf_counter`; a child's
interval always nests inside its parent's, and the sum of a span's
children never exceeds the span itself (up to clock resolution).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "aggregate_spans"]


class Span:
    """One timed, named region; children are the regions opened inside it."""

    __slots__ = ("name", "start", "end", "children", "attributes", "_tracer")

    def __init__(self, name: str, tracer: "Tracer") -> None:
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.children: List["Span"] = []
        self.attributes: Dict[str, object] = {}
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return max(self.end - self.start, 0.0)

    def set(self, **attrs: object) -> "Span":
        """Attach key/value annotations (candidate counts, dataset, ...)."""
        self.attributes.update(attrs)
        return self

    def child_totals(self) -> Dict[str, float]:
        """Total duration of the direct children, aggregated by name."""
        totals: Dict[str, float] = {}
        for child in self.children:
            totals[child.name] = totals.get(child.name, 0.0) + child.duration
        return totals

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Yield ``(span, depth)`` over the subtree, parents first."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        self._tracer._pop(self)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration * 1000:.3f} ms, "
            f"{len(self.children)} children)"
        )


class Tracer:
    """Records spans into a forest; one instance per traced run.

    Safe to share across threads: each thread nests spans on its own
    stack (open spans in one thread never adopt children from another),
    and finished roots land on the shared forest under a lock. The
    nesting invariant — the span being closed is the innermost open one
    — is therefore checked per thread, where it is actually meaningful.
    """

    active = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._local = threading.local()
        self._roots_lock = threading.Lock()
        # thread ident -> tuple of open span names, outermost first.
        # Written only by the owning thread (one dict store per span
        # open/close); read by the sampling profiler to attribute CPU
        # samples to the phase that was running. A torn read returns a
        # slightly stale tuple, never a broken one.
        self._active: Dict[int, Tuple[str, ...]] = {}

    @property
    def _stack(self) -> List[Span]:
        """The calling thread's open-span stack (created on demand)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str) -> Span:
        """A context manager timing one region named ``name``."""
        return Span(name, self)

    def _push(self, span: Span) -> None:
        stack = self._stack
        stack.append(span)
        self._active[threading.get_ident()] = tuple(s.name for s in stack)

    def _pop(self, span: Span) -> None:
        stack = self._stack
        popped = stack.pop()
        if popped is not span:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span nesting violated: closing {span.name!r} "
                f"but {popped.name!r} is innermost"
            )
        ident = threading.get_ident()
        if stack:
            stack[-1].children.append(span)
            self._active[ident] = tuple(s.name for s in stack)
        else:
            self._active.pop(ident, None)
            with self._roots_lock:
                self.roots.append(span)

    def active_stacks(self) -> Dict[int, Tuple[str, ...]]:
        """Open span names per thread ident (outermost first).

        The sampling profiler's phase-attribution hook: a CPU sample
        taken in thread ``t`` belongs to ``active_stacks()[t][-1]``,
        the innermost open span at that instant.
        """
        return dict(self._active)

    def clear(self) -> None:
        """Drop recorded roots (the calling thread's stack must be empty)."""
        if self._stack:
            raise RuntimeError("cannot clear a tracer with open spans")
        with self._roots_lock:
            self.roots = []

    def iter_spans(self) -> Iterator[Tuple[Span, int]]:
        """All recorded spans with depths, roots first."""
        for root in self.roots:
            yield from root.walk()


class _NullSpan:
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    name = ""
    start = 0.0
    end = 0.0
    duration = 0.0
    children: Tuple[()] = ()
    attributes: Dict[str, object] = {}

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def child_totals(self) -> Dict[str, float]:
        return {}

    def walk(self, depth: int = 0) -> Iterator[Tuple["_NullSpan", int]]:
        return iter(())

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-overhead tracer: every :meth:`span` is the same no-op object."""

    active = False
    roots: Tuple[()] = ()

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def active_stacks(self) -> Dict[int, Tuple[str, ...]]:
        return {}

    def clear(self) -> None:
        return None

    def iter_spans(self) -> Iterator[Tuple[Span, int]]:
        return iter(())


def aggregate_spans(
    roots: Sequence[Span], relative_to: Optional[str] = None
) -> Dict[str, Dict[str, float]]:
    """Aggregate a span forest by name.

    Returns ``name -> {"count", "total_sec", "mean_sec", "max_sec"}``,
    plus ``"share"`` (fraction of the total time of all spans named
    ``relative_to``) when that anchor name is given and present.
    """
    stats: Dict[str, Dict[str, float]] = {}
    for root in roots:
        for span, _depth in root.walk():
            entry = stats.setdefault(
                span.name,
                {"count": 0.0, "total_sec": 0.0, "mean_sec": 0.0, "max_sec": 0.0},
            )
            entry["count"] += 1
            entry["total_sec"] += span.duration
            entry["max_sec"] = max(entry["max_sec"], span.duration)
    for entry in stats.values():
        if entry["count"]:
            entry["mean_sec"] = entry["total_sec"] / entry["count"]
    if relative_to is not None and relative_to in stats:
        base = stats[relative_to]["total_sec"]
        for entry in stats.values():
            entry["share"] = entry["total_sec"] / base if base > 0 else 0.0
    return stats
