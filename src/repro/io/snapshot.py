"""Zero-copy frozen snapshots: one mmap-backed arena for the whole network.

Every batch worker and every ``gpssn serve`` boot used to rebuild
:class:`~repro.roadnet.csr.CSRGraph`, the contraction hierarchy, and both
R*-tree indexes from a pickled bundle document — O(|V| + |E|) Python work
per process, which caps experiments far below the 10^5-vertex road
networks of the paper's Figs. 10–11. A *frozen snapshot* serializes every
flat array behind the network into one versioned on-disk arena that
``np.memmap`` opens in O(1):

========================  =======  ==============================================
section                   dtype    contents
========================  =======  ==============================================
``road/ids``              int64    sorted vertex ids (n)
``road/xy``               float64  vertex coordinates (n, 2)
``road/indptr``           int64    CSR row pointers (n+1)
``road/indices``          int64    CSR neighbor indices, ascending per row (2m)
``road/weights``          float64  CSR edge lengths (2m)
``ch/rank``               int64    contraction order (n) — ``ch`` engine only
``ch/up_indptr``          int64    upward-graph row pointers (n+1)
``ch/up_indices``         int64    upward-graph targets
``ch/up_weights``         float64  upward-graph weights (original + shortcuts)
``pivot/vertices``        int64    road pivot vertex ids (h) — with indexes only
``pivot/rows``            float64  dense pivot distance rows (h, n); inf = unreachable
``poi/ids``               int64    sorted POI ids (p)
``poi/edges``             int64    POI edge endpoints (p, 2)
``poi/offsets``           float64  POI on-edge offsets (p)
``poi/xy``                float64  POI 2D locations (p, 2)
``poi/kw_indptr``         int64    keyword row pointers (p+1)
``poi/kw_indices``        int64    sorted keyword ids per POI
``user/ids``              int64    sorted user ids (q)
``user/edges``            int64    home edge endpoints (q, 2)
``user/offsets``          float64  home on-edge offsets (q)
``user/interests``        float64  interest-vector matrix (q, d)
``social/edges``          int64    friendship pairs, sorted ``(min, max)`` (f, 2)
========================  =======  ==============================================

The file layout is ``MAGIC (8 bytes) | header length (uint64 LE) |
header JSON | zero padding | sections``. The header carries the section
table (dtype/shape/offset/crc32 per section) plus a ``meta`` document:
entity counts, engine name, build arguments, version counters, CH
metadata, and the embedded index-store document (minus the CH payload,
which lives in the binary sections). Every section is little-endian,
C-contiguous, and aligned to ``mmap.ALLOCATIONGRANULARITY``; nothing in
the file depends on wall-clock time, so ``freeze → open → attach →
freeze`` reproduces the file byte for byte.

Attach is O(1) in the road size: :class:`FrozenRoadNetwork` answers the
``RoadNetwork`` API straight off the memmapped arrays (binary search in
place of dict lookups, tiny per-vertex neighbor-dict cache), the CSR /
CH engines adopt borrowed arrays, and the road pivot index revives from
the stored dense distance rows instead of re-running one full Dijkstra
per pivot. Workers pickle only ``(path, header sha256)``.
"""

from __future__ import annotations

import hashlib
import json
import math
import mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..exceptions import (
    GraphConstructionError,
    SnapshotFormatError,
    UnknownEntityError,
)
from ..geometry import Point
from ..network import SpatialSocialNetwork
from ..obs import Recorder
from ..roadnet.ch import ContractionHierarchy
from ..roadnet.csr import CSRGraph
from ..roadnet.engines import CHEngine, CSREngine
from ..roadnet.graph import NetworkPosition, RoadNetwork
from ..roadnet.poi import POI
from ..socialnet.graph import SocialNetwork, User
from .index_store import processor_from_document, processor_to_document

PathLike = Union[str, Path]

MAGIC = b"GPSSNAP\x01"
FORMAT_NAME = "gpssn-frozen-snapshot"
FORMAT_VERSION = 1

#: Section (and data-area) alignment: the mmap granularity, so every
#: section view is page-aligned for the OS to share across processes.
ALIGN = mmap.ALLOCATIONGRANULARITY


def _align_up(value: int, align: int = ALIGN) -> int:
    return (value + align - 1) // align * align


def _le(arr: np.ndarray, dtype: str) -> np.ndarray:
    """A C-contiguous little-endian copy/view of ``arr``."""
    return np.ascontiguousarray(arr, dtype=np.dtype(dtype))


# ---------------------------------------------------------------------------
# dense pivot distance maps
# ---------------------------------------------------------------------------


class _DenseDistanceMap:
    """A per-pivot distance row masquerading as the Dijkstra dict.

    :class:`~repro.index.pivots.RoadPivotIndex` consumers only call
    ``.get(vertex_id, default)`` (via ``position_distance_from_map``);
    this answers that by binary search over the sorted id array, with
    ``inf`` entries reading as "absent" exactly like the dict kernel's
    unreached vertices.
    """

    __slots__ = ("_ids", "_row")

    def __init__(self, ids: np.ndarray, row: np.ndarray) -> None:
        self._ids = ids
        self._row = row

    def get(self, vid: int, default=None):
        pos = int(np.searchsorted(self._ids, vid))
        if pos >= len(self._ids) or int(self._ids[pos]) != vid:
            return default
        value = float(self._row[pos])
        return default if math.isinf(value) else value

    def __getitem__(self, vid: int) -> float:
        value = self.get(vid)
        if value is None:
            raise KeyError(vid)
        return value

    def __contains__(self, vid: int) -> bool:
        return self.get(vid) is not None


# ---------------------------------------------------------------------------
# the frozen road network
# ---------------------------------------------------------------------------


class FrozenRoadNetwork(RoadNetwork):
    """A read-only ``RoadNetwork`` view over memmapped snapshot arrays.

    No per-vertex Python structures are built up front: id lookups
    binary-search the sorted id array, and the dict-of-dicts adjacency
    the plain Dijkstra wants is materialized lazily one vertex at a
    time. The base class's ``_coords``/``_adj`` dicts are deliberately
    *not* created, so a base method this class failed to override fails
    loudly (AttributeError) instead of silently answering from empty
    state. Mutation raises: frozen means frozen.
    """

    def __init__(
        self,
        ids: np.ndarray,
        xy: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        version: int,
    ) -> None:
        self._ids = ids
        self._xy = xy
        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self._adj_cache: Dict[int, Dict[int, float]] = {}
        self._num_edges = len(indices) // 2
        self.version = int(version)

    def _index(self, vertex_id: int) -> int:
        pos = int(np.searchsorted(self._ids, vertex_id))
        if pos >= len(self._ids) or int(self._ids[pos]) != vertex_id:
            raise UnknownEntityError(f"unknown road vertex {vertex_id}")
        return pos

    # -- mutation is refused -------------------------------------------------

    def add_vertex(self, vertex_id: int, x: float, y: float) -> None:
        raise GraphConstructionError(
            "frozen road network is immutable; mutate a thawed copy instead"
        )

    def add_edge(self, u: int, v: int, length: Optional[float] = None) -> None:
        raise GraphConstructionError(
            "frozen road network is immutable; mutate a thawed copy instead"
        )

    # -- accessors -----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._ids)

    def average_degree(self) -> float:
        if not len(self._ids):
            return 0.0
        return 2.0 * self._num_edges / len(self._ids)

    def vertices(self) -> Iterator[int]:
        return map(int, self._ids)

    def has_vertex(self, vertex_id: int) -> bool:
        pos = int(np.searchsorted(self._ids, vertex_id))
        return pos < len(self._ids) and int(self._ids[pos]) == vertex_id

    def has_edge(self, u: int, v: int) -> bool:
        try:
            self.edge_length(u, v)
            return True
        except UnknownEntityError:
            return False

    def coords(self, vertex_id: int) -> Point:
        i = self._index(vertex_id)
        return Point(float(self._xy[i, 0]), float(self._xy[i, 1]))

    def neighbors(self, vertex_id: int) -> Dict[int, float]:
        cached = self._adj_cache.get(vertex_id)
        if cached is None:
            i = self._index(vertex_id)
            lo, hi = int(self._indptr[i]), int(self._indptr[i + 1])
            nbr_ids = self._ids[self._indices[lo:hi]]
            cached = {
                int(nid): float(w)
                for nid, w in zip(nbr_ids, self._weights[lo:hi])
            }
            self._adj_cache[vertex_id] = cached
        return cached

    def edge_length(self, u: int, v: int) -> float:
        cached = self._adj_cache.get(u)
        if cached is not None:
            try:
                return cached[v]
            except KeyError:
                raise UnknownEntityError(
                    f"unknown road edge ({u}, {v})"
                ) from None
        try:
            i = self._index(u)
            j = self._index(v)
        except UnknownEntityError:
            raise UnknownEntityError(f"unknown road edge ({u}, {v})") from None
        lo, hi = int(self._indptr[i]), int(self._indptr[i + 1])
        # Canonical rows are sorted by neighbor id == internal index, so
        # the edge lookup is a binary search within the row.
        pos = lo + int(np.searchsorted(self._indices[lo:hi], j))
        if pos >= hi or int(self._indices[pos]) != j:
            raise UnknownEntityError(f"unknown road edge ({u}, {v})")
        return float(self._weights[pos])

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        ids = self._ids
        indptr = self._indptr
        indices = self._indices
        weights = self._weights
        for i in range(len(ids)):
            uid = int(ids[i])
            for j in range(int(indptr[i]), int(indptr[i + 1])):
                vid = int(ids[int(indices[j])])
                if uid < vid:
                    yield (uid, vid, float(weights[j]))

    def position_coords(self, pos: NetworkPosition) -> Point:
        length = self.edge_length(pos.u, pos.v)
        a = self.coords(pos.u)
        b = self.coords(pos.v)
        t = 0.0 if length == 0 else min(max(pos.offset / length, 0.0), 1.0)
        return Point(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y))

    def nearest_vertex(self, x: float, y: float) -> int:
        if not len(self._ids):
            raise UnknownEntityError("road network has no vertices")
        dx = self._xy[:, 0] - x
        dy = self._xy[:, 1] - y
        return int(self._ids[int(np.argmin(dx * dx + dy * dy))])

    def connected_component(self, start: int) -> List[int]:
        s = self._index(start)
        indptr = self._indptr
        indices = self._indices
        seen = {s}
        stack = [s]
        while stack:
            u = stack.pop()
            for j in range(int(indptr[u]), int(indptr[u + 1])):
                v = int(indices[j])
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        ids = self._ids
        return sorted(int(ids[i]) for i in seen)

    def is_connected(self) -> bool:
        if self.num_vertices <= 1:
            return True
        first = int(self._ids[0])
        return len(self.connected_component(first)) == self.num_vertices


# ---------------------------------------------------------------------------
# canonical arrays
# ---------------------------------------------------------------------------


def _canonical_road_arrays(road: RoadNetwork):
    """Sorted-id CSR image of ``road`` with per-row ascending neighbors.

    Sorting both axes makes the layout a pure function of the graph —
    construction order never leaks into the file — and lets the frozen
    reader binary-search ids and rows.
    """
    ids = sorted(int(v) for v in road.vertices())
    index = {vid: i for i, vid in enumerate(ids)}
    n = len(ids)
    xy = np.zeros((n, 2), dtype="<f8")
    for i, vid in enumerate(ids):
        pt = road.coords(vid)
        xy[i, 0] = pt.x
        xy[i, 1] = pt.y
    indptr = np.zeros(n + 1, dtype="<i8")
    indices: List[int] = []
    weights: List[float] = []
    for i, vid in enumerate(ids):
        row = sorted((index[int(nbr)], float(w))
                     for nbr, w in road.neighbors(vid).items())
        indptr[i + 1] = indptr[i] + len(row)
        for j, w in row:
            indices.append(j)
            weights.append(w)
    return (
        np.asarray(ids, dtype="<i8"),
        xy,
        indptr,
        np.asarray(indices, dtype="<i8"),
        np.asarray(weights, dtype="<f8"),
    )


# ---------------------------------------------------------------------------
# freeze
# ---------------------------------------------------------------------------


def freeze(
    network: SpatialSocialNetwork,
    path: PathLike,
    processor=None,
    build_args: Optional[dict] = None,
    include_indexes: bool = True,
) -> dict:
    """Write ``network`` (and its built indexes) as a frozen arena file.

    Args:
        network: the network to freeze.
        path: destination file.
        processor: an already-built
            :class:`~repro.core.algorithm.GPSSNQueryProcessor` to embed;
            built here (with ``build_args``) when ``None`` and
            ``include_indexes`` is true.
        build_args: processor build arguments (``seed``,
            ``distance_engine``, ...) used when building and recorded in
            the file for worker-side fallbacks.
        include_indexes: set false to freeze only the network arrays
            (workers then rebuild indexes on attach).

    Returns:
        The ``meta`` document written into the header.
    """
    if processor is None and include_indexes:
        from ..core.algorithm import GPSSNQueryProcessor

        processor = GPSSNQueryProcessor(
            network, recorder=Recorder(), **(build_args or {})
        )
    if processor is not None:
        build_args = dict(processor._build_args)
    elif build_args and build_args.get("distance_engine"):
        # Index-less freeze still honors the requested engine so the
        # arena carries (and ch-freezes) the right dist_RN strategy.
        network.use_distance_engine(build_args["distance_engine"])

    ids, xy, indptr, indices, weights = _canonical_road_arrays(network.road)
    n = len(ids)
    engine = network.distances.engine
    engine_name = engine.name

    sections: Dict[str, np.ndarray] = {
        "road/ids": ids,
        "road/xy": xy,
        "road/indptr": indptr,
        "road/indices": indices,
        "road/weights": weights,
    }

    # -- contraction hierarchy (arrays, not JSON) ---------------------------
    ch_meta = None
    if engine_name == "ch":
        hierarchy = None
        if isinstance(engine, CHEngine) and engine._ch is not None \
                and engine._graph is not None:
            if [int(i) for i in engine._graph.ids] == ids.tolist():
                # The live hierarchy already sits on the canonical order
                # (always true for attached/bundle-restored networks) —
                # reuse it so refreezing is cheap and byte-identical.
                hierarchy = engine._ch
        if hierarchy is None:
            canonical = CSRGraph.from_arrays(
                ids, indptr, indices, weights,
                road_version=network.road.version,
            )
            hierarchy = ContractionHierarchy.build(canonical)
        sections["ch/rank"] = _le(np.asarray(hierarchy.rank), "<i8")
        sections["ch/up_indptr"] = _le(np.asarray(hierarchy.up_indptr), "<i8")
        sections["ch/up_indices"] = _le(
            np.asarray(hierarchy.up_indices), "<i8"
        )
        sections["ch/up_weights"] = _le(
            np.asarray(hierarchy.up_weights), "<f8"
        )
        ch_meta = {
            "shortcuts_added": int(hierarchy.shortcuts_added),
            "preprocess_seconds": float(hierarchy.preprocess_seconds),
        }

    # -- road pivot distance rows -------------------------------------------
    document = None
    if processor is not None:
        index_of = {int(vid): i for i, vid in enumerate(ids.tolist())}
        pivots = [int(p) for p in processor.road_pivots.pivots]
        rows = np.full((len(pivots), n), np.inf, dtype="<f8")
        for k, dist_map in enumerate(processor.road_pivots._maps):
            if isinstance(dist_map, _DenseDistanceMap):
                rows[k] = np.asarray(dist_map._row)
            else:
                row = rows[k]
                for vid, d in dist_map.items():
                    row[index_of[int(vid)]] = d
        sections["pivot/vertices"] = np.asarray(pivots, dtype="<i8")
        sections["pivot/rows"] = rows
        document = processor_to_document(processor)
        # The hierarchy lives in the binary sections; shipping a second
        # JSON copy would bloat the header by orders of magnitude.
        document.get("distance_engine", {}).pop("ch", None)

    # -- POIs ---------------------------------------------------------------
    pois = sorted(network.pois(), key=lambda p: p.poi_id)
    p = len(pois)
    poi_ids = np.asarray([int(o.poi_id) for o in pois], dtype="<i8")
    poi_edges = np.asarray(
        [[int(o.position.u), int(o.position.v)] for o in pois], dtype="<i8"
    ).reshape(p, 2)
    poi_offsets = np.asarray(
        [float(o.position.offset) for o in pois], dtype="<f8"
    )
    poi_xy = np.asarray(
        [[float(o.location.x), float(o.location.y)] for o in pois],
        dtype="<f8",
    ).reshape(p, 2)
    kw_indptr = np.zeros(p + 1, dtype="<i8")
    kw_indices: List[int] = []
    for i, o in enumerate(pois):
        kws = sorted(int(k) for k in o.keywords)
        kw_indptr[i + 1] = kw_indptr[i] + len(kws)
        kw_indices.extend(kws)
    sections.update({
        "poi/ids": poi_ids,
        "poi/edges": poi_edges,
        "poi/offsets": poi_offsets,
        "poi/xy": poi_xy,
        "poi/kw_indptr": kw_indptr,
        "poi/kw_indices": np.asarray(kw_indices, dtype="<i8"),
    })

    # -- users + friendships ------------------------------------------------
    users = sorted(network.social.users(), key=lambda u: u.user_id)
    q = len(users)
    d = int(network.num_keywords)
    user_ids = np.asarray([int(u.user_id) for u in users], dtype="<i8")
    user_edges = np.asarray(
        [[int(u.home.u), int(u.home.v)] for u in users], dtype="<i8"
    ).reshape(q, 2)
    user_offsets = np.asarray(
        [float(u.home.offset) for u in users], dtype="<f8"
    )
    interests = np.zeros((q, d), dtype="<f8")
    for i, u in enumerate(users):
        interests[i] = u.interests
    friendships = sorted({
        (min(int(u.user_id), int(f)), max(int(u.user_id), int(f)))
        for u in users
        for f in network.social.friends(u.user_id)
    })
    sections.update({
        "user/ids": user_ids,
        "user/edges": user_edges,
        "user/offsets": user_offsets,
        "user/interests": interests,
        "social/edges": np.asarray(
            friendships, dtype="<i8"
        ).reshape(len(friendships), 2),
    })

    meta = {
        "counts": {
            "vertices": n,
            "edges": int(len(indices) // 2),
            "pois": p,
            "users": q,
            "friendships": len(friendships),
        },
        "num_keywords": d,
        "distance_engine": engine_name,
        "build_args": build_args,
        "road_version": int(network.road.version),
        "network_version": int(network.version),
        "ch": ch_meta,
        "index": document,
    }
    _write_arena(path, meta, sections)
    return meta


def _write_arena(
    path: PathLike, meta: dict, sections: Dict[str, np.ndarray]
) -> None:
    """Lay out and write the arena file.

    The header both describes the section offsets and occupies the space
    before them, so the layout is found by fixed point: start the data
    area at one page, and grow it whenever the (re-serialized) header no
    longer fits.
    """
    prepared: List[Tuple[str, np.ndarray, int]] = []
    for name, arr in sections.items():
        arr = np.ascontiguousarray(arr)
        if arr.dtype.byteorder == ">":  # pragma: no cover - BE hosts only
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        prepared.append((name, arr, zlib.crc32(arr.tobytes()) & 0xFFFFFFFF))

    data_start = ALIGN
    while True:
        table = []
        offset = data_start
        for name, arr, crc in prepared:
            offset = _align_up(offset)
            table.append({
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
                "nbytes": int(arr.nbytes),
                "crc32": crc,
            })
            offset += arr.nbytes
        header = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "meta": meta,
            "sections": table,
        }
        blob = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        needed = _align_up(len(MAGIC) + 8 + len(blob))
        if needed <= data_start:
            break
        data_start = needed

    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<Q", len(blob)))
        handle.write(blob)
        pos = len(MAGIC) + 8 + len(blob)
        for (name, arr, _crc), entry in zip(prepared, table):
            handle.write(b"\x00" * (entry["offset"] - pos))
            handle.write(arr.tobytes())
            pos = entry["offset"] + entry["nbytes"]


# ---------------------------------------------------------------------------
# open + attach
# ---------------------------------------------------------------------------


class FrozenSnapshot:
    """An opened arena file: memmapped sections plus the header document.

    Opening validates structure (magic, header, format, section bounds)
    but does *not* touch section bytes — that would fault every page in
    and defeat the O(1) attach. :meth:`verify` does the full checksum
    pass on demand.
    """

    def __init__(
        self,
        path: str,
        meta: dict,
        sections: Dict[str, np.ndarray],
        header_hash: str,
        bytes_mapped: int,
    ) -> None:
        self.path = path
        self.meta = meta
        self.sections = sections
        self.header_hash = header_hash
        self.bytes_mapped = bytes_mapped

    @classmethod
    def open(cls, path: PathLike) -> "FrozenSnapshot":
        path = str(path)
        try:
            size = os.path.getsize(path)
            with open(path, "rb") as handle:
                head = handle.read(len(MAGIC) + 8)
                if len(head) < len(MAGIC) + 8 or head[:len(MAGIC)] != MAGIC:
                    raise SnapshotFormatError(
                        f"{path}: not a frozen snapshot (bad magic)"
                    )
                (header_len,) = struct.unpack("<Q", head[len(MAGIC):])
                if len(MAGIC) + 8 + header_len > size:
                    raise SnapshotFormatError(
                        f"{path}: truncated header "
                        f"({header_len} bytes declared, file is {size})"
                    )
                blob = handle.read(header_len)
        except OSError as exc:
            raise SnapshotFormatError(f"{path}: {exc}") from exc
        try:
            header = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise SnapshotFormatError(
                f"{path}: corrupted header ({exc})"
            ) from exc
        if header.get("format") != FORMAT_NAME:
            raise SnapshotFormatError(
                f"{path}: not a {FORMAT_NAME} file "
                f"(format={header.get('format')!r})"
            )
        if header.get("version") != FORMAT_VERSION:
            raise SnapshotFormatError(
                f"{path}: unsupported snapshot version "
                f"{header.get('version')!r}"
            )
        header_hash = hashlib.sha256(blob).hexdigest()
        mm = np.memmap(path, dtype=np.uint8, mode="r")
        sections: Dict[str, np.ndarray] = {}
        for entry in header.get("sections", []):
            offset, nbytes = int(entry["offset"]), int(entry["nbytes"])
            if offset + nbytes > size:
                raise SnapshotFormatError(
                    f"{path}: truncated file — section {entry['name']!r} "
                    f"ends at {offset + nbytes} but the file is {size} bytes"
                )
            arr = mm[offset:offset + nbytes].view(
                np.dtype(entry["dtype"])
            ).reshape(tuple(entry["shape"]))
            sections[entry["name"]] = arr
        return cls(
            path=path,
            meta=header.get("meta", {}),
            sections=sections,
            header_hash=header_hash,
            bytes_mapped=int(size),
        )

    def verify(self) -> None:
        """Checksum every section; raise :class:`SnapshotFormatError` on
        the first mismatch (this faults the whole file in — not O(1))."""
        with open(self.path, "rb") as handle:
            head = handle.read(len(MAGIC) + 8)
            (header_len,) = struct.unpack("<Q", head[len(MAGIC):])
            blob = handle.read(header_len)
        table = json.loads(blob.decode("utf-8")).get("sections", [])
        for entry in table:
            arr = self.sections[entry["name"]]
            crc = zlib.crc32(arr.tobytes()) & 0xFFFFFFFF
            if crc != int(entry["crc32"]):
                raise SnapshotFormatError(
                    f"{self.path}: section {entry['name']!r} checksum "
                    f"mismatch (stored {entry['crc32']:#010x}, "
                    f"computed {crc:#010x})"
                )

    def __repr__(self) -> str:
        counts = self.meta.get("counts", {})
        return (
            f"FrozenSnapshot(path={self.path!r}, "
            f"|V|={counts.get('vertices')}, |P|={counts.get('pois')}, "
            f"|U|={counts.get('users')}, bytes={self.bytes_mapped})"
        )

    # -- attach --------------------------------------------------------------

    def attach_network(self) -> SpatialSocialNetwork:
        """Reconstruct the :class:`SpatialSocialNetwork` over borrowed
        arrays — no validation walk, no CSR/CH rebuild."""
        s = self.sections
        meta = self.meta
        road = FrozenRoadNetwork(
            ids=s["road/ids"],
            xy=s["road/xy"],
            indptr=s["road/indptr"],
            indices=s["road/indices"],
            weights=s["road/weights"],
            version=meta["road_version"],
        )
        social = SocialNetwork()
        user_ids = s["user/ids"]
        user_edges = s["user/edges"]
        user_offsets = s["user/offsets"]
        interests = s["user/interests"]
        for i in range(len(user_ids)):
            social.add_user(User(
                user_id=int(user_ids[i]),
                interests=interests[i],
                home=NetworkPosition(
                    int(user_edges[i, 0]),
                    int(user_edges[i, 1]),
                    float(user_offsets[i]),
                ),
            ))
        for a, b in s["social/edges"]:
            social.add_friendship(int(a), int(b))

        poi_ids = s["poi/ids"]
        poi_edges = s["poi/edges"]
        poi_offsets = s["poi/offsets"]
        poi_xy = s["poi/xy"]
        kw_indptr = s["poi/kw_indptr"]
        kw_indices = s["poi/kw_indices"]
        pois = []
        for i in range(len(poi_ids)):
            lo, hi = int(kw_indptr[i]), int(kw_indptr[i + 1])
            pois.append(POI(
                poi_id=int(poi_ids[i]),
                location=Point(float(poi_xy[i, 0]), float(poi_xy[i, 1])),
                position=NetworkPosition(
                    int(poi_edges[i, 0]),
                    int(poi_edges[i, 1]),
                    float(poi_offsets[i]),
                ),
                keywords=frozenset(int(k) for k in kw_indices[lo:hi]),
            ))

        network = SpatialSocialNetwork(
            road, social, pois,
            num_keywords=int(meta["num_keywords"]),
            distance_engine=meta.get("distance_engine") or "plain",
            validate=False,
        )
        # Reproduce the frozen-time version arithmetic exactly: the road
        # version was stamped above; the social rebuild counted its own
        # adds; whatever remains is the POI contribution.
        network._poi_version = (
            int(meta["network_version"]) - road.version - social.version
        )

        engine = network.distances.engine
        if isinstance(engine, CSREngine):
            graph = CSRGraph.from_arrays(
                s["road/ids"], s["road/indptr"], s["road/indices"],
                s["road/weights"], road_version=road.version,
            )
            if isinstance(engine, CHEngine) and "ch/rank" in s:
                ch_meta = meta.get("ch") or {}
                hierarchy = ContractionHierarchy(
                    n=len(s["road/ids"]),
                    rank=s["ch/rank"],
                    up_indptr=s["ch/up_indptr"],
                    up_indices=s["ch/up_indices"],
                    up_weights=s["ch/up_weights"],
                    shortcuts_added=int(ch_meta.get("shortcuts_added", 0)),
                    preprocess_seconds=float(
                        ch_meta.get("preprocess_seconds", 0.0)
                    ),
                )
                engine.adopt(graph, hierarchy)
            else:
                engine.adopt_graph(graph)
        return network

    def attach(self, toggles=None):
        """Attach the full engine: ``(network, processor-or-None)``.

        The processor revives from the embedded index document with the
        stored pivot distance rows standing in for the per-pivot
        Dijkstras; ``None`` when the snapshot was frozen without
        indexes.
        """
        from ..index.pivots import RoadPivotIndex

        network = self.attach_network()
        document = self.meta.get("index")
        if not document:
            return network, None
        ids = self.sections["road/ids"]
        pivot_ids = [int(p) for p in self.sections["pivot/vertices"]]
        rows = self.sections["pivot/rows"]
        road_pivots = RoadPivotIndex.from_maps(
            network.road,
            pivot_ids,
            [_DenseDistanceMap(ids, rows[k]) for k in range(len(pivot_ids))],
        )
        processor = processor_from_document(
            document,
            network,
            toggles=toggles,
            source=self.path,
            road_pivots=road_pivots,
            build_args=self.meta.get("build_args"),
        )
        return network, processor
