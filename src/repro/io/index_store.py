"""Persist and reload built GP-SSN processors.

Index construction is dominated by the offline precompute — Algorithm-1
pivot selection and the per-POI region sweep (one truncated Dijkstra per
POI). :func:`save_processor` captures everything that is expensive to
derive; :func:`load_processor` reconstructs a ready-to-serve processor
recomputing only the pivot SSSP/BFS tables (a handful of searches).

The store records the network version at save time; loading against a
network that has since mutated (or a different network) is rejected, the
same staleness contract the live processor enforces.

The document-level halves (:func:`processor_to_document` /
:func:`processor_from_document`) are exposed separately so the frozen
snapshot arena (:mod:`repro.io.snapshot`) can embed the same index
document next to its memmapped arrays instead of a second file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from ..core.algorithm import GPSSNQueryProcessor, PruningToggles
from ..exceptions import IndexStateError, InvalidParameterError
from ..index.pivots import RoadPivotIndex, SocialPivotIndex
from ..index.road_index import RoadIndex
from ..index.social_index import SocialIndex
from ..network import SpatialSocialNetwork
from ..obs import Recorder
from ..roadnet.engines import CHEngine

PathLike = Union[str, Path]

FORMAT_NAME = "gpssn-index-store"
FORMAT_VERSION = 1


def processor_to_document(processor: GPSSNQueryProcessor) -> dict:
    """The JSON-serializable image :func:`save_processor` writes.

    When the network runs on the ``ch`` distance engine, the contraction
    hierarchy (the other expensive offline artifact) is persisted
    alongside the R*-tree snapshots — forcing the build now if it has
    not been triggered yet, so a loaded store never re-pays
    preprocessing.
    """
    engine = processor.network.distances.engine
    engine_doc = {"name": engine.name}
    if isinstance(engine, CHEngine):
        engine_doc["ch"] = engine.snapshot()
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "network_version": processor.network.version,
        "r_min": processor.r_min,
        "r_max": processor.r_max,
        "road_index": processor.road_index.snapshot(),
        "social_index": processor.social_index.snapshot(),
        "distance_engine": engine_doc,
    }


def save_processor(path: PathLike, processor: GPSSNQueryProcessor) -> None:
    """Serialize a built processor's indexes to ``path`` (JSON)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(processor_to_document(processor), handle)


def processor_from_document(
    document: dict,
    network: SpatialSocialNetwork,
    toggles: Optional[PruningToggles] = None,
    source: str = "<index-document>",
    road_pivots: Optional[RoadPivotIndex] = None,
    build_args: Optional[dict] = None,
) -> GPSSNQueryProcessor:
    """Reconstruct a processor from a :func:`processor_to_document` image.

    Args:
        document: the parsed index document.
        network: the *same* network the document was built against
            (checked via the version counter).
        toggles: optional pruning toggles for the revived processor.
        source: where the document came from (error messages only).
        road_pivots: optional pre-built pivot index — frozen snapshots
            carry the pivot distance rows and pass a revived index here
            so no per-pivot Dijkstra runs on attach.
        build_args: optional ``_build_args`` override recorded on the
            revived processor (frozen snapshots persist the originals).

    Raises:
        InvalidParameterError: wrong document format/version.
        IndexStateError: the network mutated since the store was written.
    """
    if document.get("format") != FORMAT_NAME:
        raise InvalidParameterError(
            f"{source}: not a {FORMAT_NAME} document "
            f"(format={document.get('format')!r})"
        )
    if document.get("version") != FORMAT_VERSION:
        raise InvalidParameterError(
            f"{source}: unsupported store version "
            f"{document.get('version')!r}"
        )
    if document["network_version"] != network.version:
        raise IndexStateError(
            f"{source}: built against network version "
            f"{document['network_version']}, current is {network.version}; "
            "rebuild the indexes instead of loading the store"
        )

    engine_doc = document.get("distance_engine")
    if engine_doc is not None:
        name = engine_doc["name"]
        if name == "ch" and "ch" in engine_doc:
            network.distances.engine = CHEngine.from_snapshot(
                network.road, engine_doc["ch"]
            )
            network.distances.clear()
        else:
            network.use_distance_engine(name)

    road_snapshot = document["road_index"]
    social_snapshot = document["social_index"]
    if road_pivots is None:
        road_pivots = RoadPivotIndex(network.road, road_snapshot["pivots"])
    social_pivots = SocialPivotIndex(
        network.social, social_snapshot["social_pivots"]
    )

    processor = GPSSNQueryProcessor.__new__(GPSSNQueryProcessor)
    processor.toggles = toggles or PruningToggles()
    processor.network = network
    processor.recorder = Recorder()
    processor.road_pivots = road_pivots
    processor.social_pivots = social_pivots
    processor.road_index = RoadIndex.from_snapshot(
        network, road_pivots, road_snapshot
    )
    processor.social_index = SocialIndex.from_snapshot(
        network, social_pivots, road_pivots, social_snapshot
    )
    processor.r_min = float(document["r_min"])
    processor.r_max = float(document["r_max"])
    processor._built_version = network.version
    # Kernel selection is runtime strategy, not persisted index state:
    # revived processors get the default vectorized path (and rebuild
    # the PairKernel lazily like a freshly constructed one).
    processor.refinement_kernel = "vector"
    processor._kernel = None
    processor._build_args = dict(build_args) if build_args else dict(
        num_road_pivots=road_pivots.num_pivots,
        num_social_pivots=social_pivots.num_pivots,
        r_min=processor.r_min, r_max=processor.r_max,
        max_entries=16, leaf_size=social_snapshot["leaf_size"], seed=0,
        distance_engine=(
            engine_doc["name"] if engine_doc is not None else None
        ),
        refinement_kernel="vector",
    )
    return processor


def load_processor(
    path: PathLike,
    network: SpatialSocialNetwork,
    toggles: Optional[PruningToggles] = None,
) -> GPSSNQueryProcessor:
    """Reconstruct a processor from :func:`save_processor` output."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return processor_from_document(
        document, network, toggles=toggles, source=str(path)
    )
