"""Self-contained JSON bundles for full spatial-social networks.

A bundle round-trips everything a :class:`SpatialSocialNetwork` holds —
road vertices/edges, POIs with positions and keywords, users with
interest vectors, homes, and friendships — so an experiment's exact
input can be archived next to its results and reloaded bit-for-bit.

The format is a single JSON document::

    {
      "format": "gpssn-bundle",
      "version": 1,
      "num_keywords": 5,
      "road": {"vertices": [[id, x, y], ...],
               "edges": [[u, v, length], ...]},
      "pois": [[id, u, v, offset, [keywords...]], ...],
      "users": [[id, u, v, offset, [interests...]], ...],
      "friendships": [[a, b], ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..exceptions import InvalidParameterError
from ..network import SpatialSocialNetwork
from ..roadnet.graph import NetworkPosition, RoadNetwork
from ..roadnet.poi import POI
from ..socialnet.graph import SocialNetwork, User

PathLike = Union[str, Path]

FORMAT_NAME = "gpssn-bundle"
FORMAT_VERSION = 1


def network_to_document(network: SpatialSocialNetwork) -> dict:
    """The plain-data bundle document for ``network``.

    The same structure :func:`save_network` writes to disk, kept in
    memory: it is JSON- and pickle-safe, so it doubles as the network
    snapshot the batch service ships to worker processes (see
    :class:`repro.service.executor.NetworkSnapshot`).
    """
    road = network.road
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "num_keywords": network.num_keywords,
        "road": {
            "vertices": [
                [vid, road.coords(vid).x, road.coords(vid).y]
                for vid in sorted(road.vertices())
            ],
            "edges": [[u, v, length] for u, v, length in sorted(road.edges())],
        },
        "pois": [
            [
                poi.poi_id,
                poi.position.u,
                poi.position.v,
                poi.position.offset,
                sorted(poi.keywords),
            ]
            for poi in sorted(network.pois(), key=lambda p: p.poi_id)
        ],
        "users": [
            [
                user.user_id,
                user.home.u,
                user.home.v,
                user.home.offset,
                [float(w) for w in user.interests],
            ]
            for user in sorted(
                network.social.users(), key=lambda u: u.user_id
            )
        ],
        "friendships": sorted(
            [min(a, b), max(a, b)]
            for a in network.social.user_ids()
            for b in network.social.friends(a)
            if a < b
        ),
    }


def save_network(path: PathLike, network: SpatialSocialNetwork) -> None:
    """Serialize ``network`` to a JSON bundle at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(network_to_document(network), handle)


def network_from_document(
    document: dict, source: str = "<document>"
) -> SpatialSocialNetwork:
    """Reconstruct a :class:`SpatialSocialNetwork` from a bundle document.

    Construction order is fully determined by the document (vertices,
    edges, POIs, users, and friendships are each sorted at save time),
    so two networks restored from the same document are structurally
    identical — including dict iteration orders, which batch workers
    rely on for bit-reproducible answers.
    """
    if document.get("format") != FORMAT_NAME:
        raise InvalidParameterError(
            f"{source}: not a {FORMAT_NAME} file "
            f"(format={document.get('format')!r})"
        )
    if document.get("version") != FORMAT_VERSION:
        raise InvalidParameterError(
            f"{source}: unsupported bundle version {document.get('version')!r}"
        )

    road = RoadNetwork()
    for vid, x, y in document["road"]["vertices"]:
        road.add_vertex(int(vid), float(x), float(y))
    for u, v, length in document["road"]["edges"]:
        road.add_edge(int(u), int(v), length=float(length))

    pois = []
    for pid, u, v, offset, keywords in document["pois"]:
        position = NetworkPosition(int(u), int(v), float(offset))
        pois.append(
            POI(
                poi_id=int(pid),
                location=road.position_coords(position),
                position=position,
                keywords=frozenset(int(k) for k in keywords),
            )
        )

    social = SocialNetwork()
    for uid, u, v, offset, interests in document["users"]:
        social.add_user(
            User(
                user_id=int(uid),
                interests=np.asarray(interests, dtype=float),
                home=NetworkPosition(int(u), int(v), float(offset)),
            )
        )
    for a, b in document["friendships"]:
        social.add_friendship(int(a), int(b))

    return SpatialSocialNetwork(
        road, social, pois, int(document["num_keywords"])
    )


def load_network(path: PathLike) -> SpatialSocialNetwork:
    """Reconstruct a :class:`SpatialSocialNetwork` from a JSON bundle."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    return network_from_document(document, source=str(path))
