"""Parsers and writers for the public dataset formats the paper uses.

* **SNAP social edge lists** (``loc-brightkite_edges.txt`` /
  ``loc-gowalla_edges.txt``): one undirected friendship per line,
  ``<user_a>\\t<user_b>``, ``#`` comments.
* **SNAP check-ins** (``loc-brightkite_totalCheckins.txt``):
  ``<user>\\t<time>\\t<lat>\\t<lon>\\t<location_id>`` per line; we keep
  the user, coordinates, and location id (the timestamp is parsed but
  unused by the generators).
* **DIMACS road graphs** (the 9th DIMACS challenge ``.gr``/``.co``
  pair used for the Colorado network, also a common distribution shape
  for the California network): ``p sp <n> <m>`` header, ``a u v w``
  arc lines, and ``v id x y`` coordinate lines.

All loaders are streaming, tolerate comments/blank lines, and raise
:class:`~repro.exceptions.InvalidParameterError` on malformed records
with the offending line number.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..exceptions import InvalidParameterError
from ..roadnet.graph import RoadNetwork

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CheckinRecord:
    """One check-in: a user visiting a location."""

    user_id: int
    latitude: float
    longitude: float
    location_id: str
    timestamp: Optional[str] = None


# ---------------------------------------------------------------------------
# SNAP social edge lists
# ---------------------------------------------------------------------------


def load_snap_social_edges(path: PathLike) -> List[Tuple[int, int]]:
    """Parse a SNAP-style friendship edge list.

    Duplicate directions (``a b`` and ``b a``) collapse into one
    undirected edge; self-loops are skipped (both appear in the real
    Brightkite dump).
    """
    edges: set = set()
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise InvalidParameterError(
                    f"{path}:{lineno}: expected two user ids, got {line!r}"
                )
            try:
                a, b = int(parts[0]), int(parts[1])
            except ValueError:
                raise InvalidParameterError(
                    f"{path}:{lineno}: non-integer user id in {line!r}"
                ) from None
            if a == b:
                continue
            edges.add((min(a, b), max(a, b)))
    return sorted(edges)


def write_snap_social_edges(
    path: PathLike, edges: Iterable[Tuple[int, int]]
) -> None:
    """Write an undirected edge list in SNAP's two-column format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# undirected friendship edges (SNAP format)\n")
        for a, b in edges:
            handle.write(f"{a}\t{b}\n")


# ---------------------------------------------------------------------------
# SNAP check-ins
# ---------------------------------------------------------------------------


def load_checkins(path: PathLike) -> List[CheckinRecord]:
    """Parse a SNAP-style check-in file.

    Real dumps contain occasional records with zeroed coordinates;
    those are kept (filtering is a modelling decision left to callers).
    """
    records: List[CheckinRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 5:
                raise InvalidParameterError(
                    f"{path}:{lineno}: expected 5 fields, got {len(parts)}"
                )
            try:
                records.append(
                    CheckinRecord(
                        user_id=int(parts[0]),
                        timestamp=parts[1],
                        latitude=float(parts[2]),
                        longitude=float(parts[3]),
                        location_id=parts[4],
                    )
                )
            except ValueError:
                raise InvalidParameterError(
                    f"{path}:{lineno}: malformed check-in {line!r}"
                ) from None
    return records


def write_checkins(path: PathLike, records: Iterable[CheckinRecord]) -> None:
    """Write check-ins in SNAP's five-column format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# user\ttime\tlat\tlon\tlocation_id\n")
        for r in records:
            stamp = r.timestamp or "1970-01-01T00:00:00Z"
            handle.write(
                f"{r.user_id}\t{stamp}\t{r.latitude}\t{r.longitude}\t"
                f"{r.location_id}\n"
            )


# ---------------------------------------------------------------------------
# DIMACS road graphs
# ---------------------------------------------------------------------------

#: DIMACS coordinate files store micro-degrees; we keep raw units and
#: let callers rescale.
def load_dimacs_road(
    gr_path: PathLike,
    co_path: PathLike,
    length_scale: float = 1.0,
) -> RoadNetwork:
    """Build a :class:`RoadNetwork` from a DIMACS ``.gr``/``.co`` pair.

    Args:
        gr_path: arc file (``a u v w`` lines; arcs appear once per
            direction — duplicates collapse into undirected edges).
        co_path: coordinate file (``v id x y`` lines).
        length_scale: multiplier applied to arc weights.
    """
    coords: Dict[int, Tuple[float, float]] = {}
    with open(co_path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] in "cp":
                continue
            parts = line.split()
            if parts[0] != "v" or len(parts) != 4:
                raise InvalidParameterError(
                    f"{co_path}:{lineno}: expected 'v id x y', got {line!r}"
                )
            coords[int(parts[1])] = (float(parts[2]), float(parts[3]))

    road = RoadNetwork()
    for vid, (x, y) in sorted(coords.items()):
        road.add_vertex(vid, x, y)

    with open(gr_path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line[0] in "cp":
                continue
            parts = line.split()
            if parts[0] != "a" or len(parts) != 4:
                raise InvalidParameterError(
                    f"{gr_path}:{lineno}: expected 'a u v w', got {line!r}"
                )
            u, v, w = int(parts[1]), int(parts[2]), float(parts[3])
            if u == v or road.has_edge(u, v):
                continue
            road.add_edge(u, v, length=w * length_scale)
    return road


def write_dimacs_road(
    gr_path: PathLike, co_path: PathLike, road: RoadNetwork
) -> None:
    """Write a road network as a DIMACS ``.gr``/``.co`` pair."""
    with open(co_path, "w", encoding="utf-8") as handle:
        handle.write("c coordinates\n")
        handle.write(f"p aux sp co {road.num_vertices}\n")
        for vid in sorted(road.vertices()):
            pt = road.coords(vid)
            handle.write(f"v {vid} {pt.x} {pt.y}\n")
    with open(gr_path, "w", encoding="utf-8") as handle:
        handle.write("c road graph\n")
        handle.write(f"p sp {road.num_vertices} {2 * road.num_edges}\n")
        for u, v, length in sorted(road.edges()):
            handle.write(f"a {u} {v} {length}\n")
            handle.write(f"a {v} {u} {length}\n")
