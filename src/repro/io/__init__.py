"""Dataset input/output.

The paper evaluates on public datasets distributed in two de-facto
standard formats, both supported here so the reproduction can run on
the *real* data when it is available:

* :mod:`~repro.io.formats` — parsers/writers for SNAP-style social edge
  lists (Brightkite/Gowalla), SNAP-style check-in records, and
  DIMACS-style road graphs (California/Colorado);
* :mod:`~repro.io.bundle` — a self-contained JSON bundle format that
  round-trips a full :class:`~repro.network.SpatialSocialNetwork`
  (road + POIs + users + friendships) for reproducible experiments;
* :mod:`~repro.io.index_store` — persistence for built processors
  (pivot tables, R*-trees, CH preprocessing) as JSON documents;
* :mod:`~repro.io.snapshot` — the zero-copy frozen arena: one
  page-aligned binary file that :func:`~repro.io.snapshot.freeze`
  writes and :class:`~repro.io.snapshot.FrozenSnapshot` memmap-attaches
  in O(1), shared read-only across worker processes.
"""

from .bundle import load_network, save_network
from .index_store import (
    load_processor,
    processor_from_document,
    processor_to_document,
    save_processor,
)
from .formats import (
    load_checkins,
    load_dimacs_road,
    load_snap_social_edges,
    write_checkins,
    write_dimacs_road,
    write_snap_social_edges,
)
from .snapshot import FrozenRoadNetwork, FrozenSnapshot, freeze

__all__ = [
    "save_network",
    "load_network",
    "save_processor",
    "load_processor",
    "processor_to_document",
    "processor_from_document",
    "freeze",
    "FrozenSnapshot",
    "FrozenRoadNetwork",
    "load_snap_social_edges",
    "write_snap_social_edges",
    "load_checkins",
    "write_checkins",
    "load_dimacs_road",
    "write_dimacs_road",
]
