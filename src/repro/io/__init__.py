"""Dataset input/output.

The paper evaluates on public datasets distributed in two de-facto
standard formats, both supported here so the reproduction can run on
the *real* data when it is available:

* :mod:`~repro.io.formats` — parsers/writers for SNAP-style social edge
  lists (Brightkite/Gowalla), SNAP-style check-in records, and
  DIMACS-style road graphs (California/Colorado);
* :mod:`~repro.io.bundle` — a self-contained JSON bundle format that
  round-trips a full :class:`~repro.network.SpatialSocialNetwork`
  (road + POIs + users + friendships) for reproducible experiments.
"""

from .bundle import load_network, save_network
from .index_store import load_processor, save_processor
from .formats import (
    load_checkins,
    load_dimacs_road,
    load_snap_social_edges,
    write_checkins,
    write_dimacs_road,
    write_snap_social_edges,
)

__all__ = [
    "save_network",
    "load_network",
    "save_processor",
    "load_processor",
    "load_snap_social_edges",
    "write_snap_social_edges",
    "load_checkins",
    "write_checkins",
    "load_dimacs_road",
    "write_dimacs_road",
]
